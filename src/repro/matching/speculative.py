"""Speculative parallel DFA computation — paper Algorithm 3 (prior work).

Each chunk is scanned *from every DFA state simultaneously*, producing a
transformation ``T_i : Q → Q``; the chunk results compose associatively.
The per-character work is ``O(|D|)`` — the overhead the SFA construction
moves to compile time.  We vectorize the inner all-states step with one
NumPy gather per character, which is exactly the algorithm's data layout
(``T`` is a vector indexed by state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.mapping import Transformation
from repro.automata.stride import best_stride_table
from repro.errors import MatchEngineError
from repro.parallel.chunking import clamp_chunks, split_balanced
from repro.parallel.executor import ChunkExecutor, SerialExecutor
from repro.parallel.scan import KERNELS, table_columns, transform_scan
from repro.planning.plan import Plan, resolve_plan
from repro.regex.charclass import pack_stride

#: Legacy defaults of a bare ``speculative_run`` call.
_RUN_DEFAULTS = Plan(engine="speculative")


def chunk_transformation(table: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Simulate transitions from all states over one chunk (lines 1–7).

    Returns the transformation vector ``T`` with ``T[q]`` = state reached
    from ``q`` after the chunk.  One vectorized gather per character; the
    ``O(|D|)`` per-character cost is explicit in the gather width.
    """
    return transform_scan(table, classes)


def compose_transformations(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Associative reduction ``T_1 ⊙ T_2 ⊙ … ⊙ T_p`` (line 9, parallel)."""
    if not parts:
        raise MatchEngineError("nothing to reduce")
    acc = parts[0]
    for t in parts[1:]:
        acc = t[acc]  # apply acc first, then t
    return acc


@dataclass
class SpeculativeRunResult:
    """Outcome + work accounting of an Algorithm 3 run."""

    final_state: int
    accepted: bool
    num_chunks: int
    lookups: int  # total table lookups performed (work, not span)

    @property
    def lookups_per_char(self) -> float:
        return self.lookups / max(1, self._num_chars)

    _num_chars: int = 0


def speculative_run(
    dfa: DFA,
    classes: np.ndarray,
    num_chunks: Optional[int] = None,
    reduction: Optional[str] = None,
    executor: Optional[ChunkExecutor] = None,
    kernel: Optional[str] = None,
    plan=None,
) -> SpeculativeRunResult:
    """Full Algorithm 3: chunked speculative scan + reduction.

    ``plan`` bundles the strategy knobs (explicit legacy knobs win; with
    neither, the legacy defaults apply: one chunk, sequential reduction,
    python kernel).

    ``reduction`` ∈ {"sequential", "tree"}:

    * ``sequential`` — walk ``q0`` through ``T_1, …, T_p`` (lines 10–11
      right column): ``O(p)`` extra time, no composition needed.
    * ``tree`` — compose transformations pairwise (line 9 left column):
      each ``⊙`` costs ``O(|D|)`` work here (gather of width ``|D|``).

    ``executor`` dispatches the chunk scans (serial / threads / processes),
    exactly as in :func:`repro.matching.parallel_sfa.parallel_sfa_run`, and
    ``kernel`` likewise picks the scan kernel (DESIGN.md §3.5): for the
    all-states scan the stride kernels compose 2-/4-grams into the table
    and run the vector shape over the packed stream.  ``num_chunks`` is
    clamped to the symbol count so no empty chunk is dispatched.
    """
    ex_instance = executor if isinstance(executor, ChunkExecutor) else None
    p = resolve_plan(
        plan, "fullmatch", len(classes), subject=dfa,
        defaults=_RUN_DEFAULTS,
        num_chunks=num_chunks, reduction=reduction,
        executor=None if ex_instance is not None else executor,
        kernel=kernel,
    )
    num_chunks, reduction, kernel = p.num_chunks, p.reduction, p.kernel
    executor = ex_instance or p.resolve_executor() or SerialExecutor()
    n = dfa.num_states
    st = None
    if kernel in ("stride2", "stride4"):
        st = best_stride_table(dfa, 2 if kernel == "stride2" else 4)
    if st is not None:
        packed, tail = pack_stride(classes, dfa.num_classes, st.stride)
        spans = split_balanced(len(packed), clamp_chunks(len(packed), num_chunks))
        parts = list(
            executor.scan("transform", st.table, 0, packed, spans, "vector")
        )
        if len(tail):
            # compose the < stride leftover into the last chunk's mapping
            cols = table_columns(dfa.table)
            t = parts[-1]
            for c in tail.tolist():
                t = cols[c][t]
            parts[-1] = t
        lookups = (len(packed) + len(tail)) * n
    else:
        scan_kernel = kernel if kernel == "vector" else "python"
        spans = split_balanced(len(classes), clamp_chunks(len(classes), num_chunks))
        parts = list(
            executor.scan("transform", dfa.table, 0, classes, spans, scan_kernel)
        )
        lookups = len(classes) * n
    if reduction == "sequential":
        q = dfa.initial
        for t in parts:
            q = int(t[q])
    elif reduction == "tree":
        t_all = compose_transformations(parts)
        lookups += (len(parts) - 1) * n
        q = int(t_all[dfa.initial])
    else:
        raise MatchEngineError(f"unknown reduction {reduction!r}")
    res = SpeculativeRunResult(
        final_state=q,
        accepted=bool(dfa.accept[q]),
        num_chunks=len(parts),
        lookups=lookups,
    )
    res._num_chars = int(len(classes))
    return res


class SpeculativeDFAMatcher:
    """Object wrapper around Algorithm 3 for a fixed DFA."""

    name = "dfa-speculative"

    def __init__(
        self,
        dfa: DFA,
        num_chunks: int = 2,
        reduction: str = "sequential",
        executor: Optional[ChunkExecutor] = None,
        kernel: str = "python",
    ):
        if num_chunks < 1:
            raise MatchEngineError("num_chunks must be >= 1")
        if kernel not in KERNELS:
            raise MatchEngineError(f"unknown kernel {kernel!r}")
        self.dfa = dfa
        self.num_chunks = num_chunks
        self.reduction = reduction
        self.executor = executor
        self.kernel = kernel

    def run_classes(self, classes: np.ndarray) -> int:
        return speculative_run(
            self.dfa, classes, self.num_chunks, self.reduction, self.executor,
            self.kernel,
        ).final_state

    def accepts_classes(self, classes: np.ndarray) -> bool:
        return speculative_run(
            self.dfa, classes, self.num_chunks, self.reduction, self.executor,
            self.kernel,
        ).accepted

    def accepts(self, data: bytes) -> bool:
        return self.accepts_classes(self.dfa.partition.translate(data))

    def chunk_mapping(self, classes: np.ndarray) -> Transformation:
        """The mapping computed for one chunk, as a mapping object.

        Tests use this to check the key SFA property: the mapping equals
        the one stored at the SFA state reached on the same chunk.
        """
        return Transformation(chunk_transformation(self.dfa.table, classes))

    def lookups_per_char(self) -> float:
        """Table lookups per char (Table II: ``|D|`` per char per chunk)."""
        return float(self.dfa.num_states)
