"""Speculative parallel DFA computation — paper Algorithm 3 (prior work).

Each chunk is scanned *from every DFA state simultaneously*, producing a
transformation ``T_i : Q → Q``; the chunk results compose associatively.
The per-character work is ``O(|D|)`` — the overhead the SFA construction
moves to compile time.  We vectorize the inner all-states step with one
NumPy gather per character, which is exactly the algorithm's data layout
(``T`` is a vector indexed by state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.mapping import Transformation
from repro.errors import MatchEngineError
from repro.parallel.chunking import split_balanced
from repro.parallel.executor import ChunkExecutor, SerialExecutor
from repro.parallel.scan import transform_scan


def chunk_transformation(table: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Simulate transitions from all states over one chunk (lines 1–7).

    Returns the transformation vector ``T`` with ``T[q]`` = state reached
    from ``q`` after the chunk.  One vectorized gather per character; the
    ``O(|D|)`` per-character cost is explicit in the gather width.
    """
    return transform_scan(table, classes)


def compose_transformations(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Associative reduction ``T_1 ⊙ T_2 ⊙ … ⊙ T_p`` (line 9, parallel)."""
    if not parts:
        raise MatchEngineError("nothing to reduce")
    acc = parts[0]
    for t in parts[1:]:
        acc = t[acc]  # apply acc first, then t
    return acc


@dataclass
class SpeculativeRunResult:
    """Outcome + work accounting of an Algorithm 3 run."""

    final_state: int
    accepted: bool
    num_chunks: int
    lookups: int  # total table lookups performed (work, not span)

    @property
    def lookups_per_char(self) -> float:
        return self.lookups / max(1, self._num_chars)

    _num_chars: int = 0


def speculative_run(
    dfa: DFA,
    classes: np.ndarray,
    num_chunks: int,
    reduction: str = "sequential",
    executor: Optional[ChunkExecutor] = None,
) -> SpeculativeRunResult:
    """Full Algorithm 3: chunked speculative scan + reduction.

    ``reduction`` ∈ {"sequential", "tree"}:

    * ``sequential`` — walk ``q0`` through ``T_1, …, T_p`` (lines 10–11
      right column): ``O(p)`` extra time, no composition needed.
    * ``tree`` — compose transformations pairwise (line 9 left column):
      each ``⊙`` costs ``O(|D|)`` work here (gather of width ``|D|``).

    ``executor`` dispatches the chunk scans (serial / threads / processes),
    exactly as in :func:`repro.matching.parallel_sfa.parallel_sfa_run`.
    """
    if num_chunks < 1:
        raise MatchEngineError("num_chunks must be >= 1")
    executor = executor or SerialExecutor()
    spans = split_balanced(len(classes), num_chunks)
    parts: List[np.ndarray] = executor.scan("transform", dfa.table, 0, classes, spans)
    n = dfa.num_states
    lookups = len(classes) * n
    if reduction == "sequential":
        q = dfa.initial
        for t in parts:
            q = int(t[q])
    elif reduction == "tree":
        t_all = compose_transformations(parts)
        lookups += (len(parts) - 1) * n
        q = int(t_all[dfa.initial])
    else:
        raise MatchEngineError(f"unknown reduction {reduction!r}")
    res = SpeculativeRunResult(
        final_state=q,
        accepted=bool(dfa.accept[q]),
        num_chunks=len(parts),
        lookups=lookups,
    )
    res._num_chars = int(len(classes))
    return res


class SpeculativeDFAMatcher:
    """Object wrapper around Algorithm 3 for a fixed DFA."""

    name = "dfa-speculative"

    def __init__(
        self,
        dfa: DFA,
        num_chunks: int = 2,
        reduction: str = "sequential",
        executor: Optional[ChunkExecutor] = None,
    ):
        if num_chunks < 1:
            raise MatchEngineError("num_chunks must be >= 1")
        self.dfa = dfa
        self.num_chunks = num_chunks
        self.reduction = reduction
        self.executor = executor

    def run_classes(self, classes: np.ndarray) -> int:
        return speculative_run(
            self.dfa, classes, self.num_chunks, self.reduction, self.executor
        ).final_state

    def accepts_classes(self, classes: np.ndarray) -> bool:
        return speculative_run(
            self.dfa, classes, self.num_chunks, self.reduction, self.executor
        ).accepted

    def accepts(self, data: bytes) -> bool:
        return self.accepts_classes(self.dfa.partition.translate(data))

    def chunk_mapping(self, classes: np.ndarray) -> Transformation:
        """The mapping computed for one chunk, as a mapping object.

        Tests use this to check the key SFA property: the mapping equals
        the one stored at the SFA state reached on the same chunk.
        """
        return Transformation(chunk_transformation(self.dfa.table, classes))

    def lookups_per_char(self) -> float:
        """Table lookups per char (Table II: ``|D|`` per char per chunk)."""
        return float(self.dfa.num_states)
