"""Matching engines.

One module per algorithm in the paper:

* :mod:`repro.matching.sequential` — Algorithm 2, the sequential DFA run.
* :mod:`repro.matching.speculative` — Algorithm 3, prior-work parallel DFA
  via speculative all-states simulation (the ``O(|D|·n/p)`` baseline).
* :mod:`repro.matching.parallel_sfa` — Algorithm 5, parallel SFA matching
  with sequential or tree reduction.
* :mod:`repro.matching.lockstep` — the data-parallel SIMD-style realization
  of Algorithm 5: all chunk scans advance in lockstep through one vectorized
  table gather per position.
* :mod:`repro.matching.engine` — the high-level public API
  (:func:`repro.compile_pattern`).
"""

from repro.matching.engine import CompiledPattern, compile_pattern
from repro.matching.lockstep import LockstepSFAMatcher, lockstep_run
from repro.matching.multi import MultiPatternSet
from repro.matching.parallel_sfa import ParallelSFAMatcher, parallel_sfa_run
from repro.matching.sequential import SequentialDFAMatcher, sequential_run
from repro.matching.spans import SpanEngine
from repro.matching.speculative import SpeculativeDFAMatcher, speculative_run
from repro.matching.stream import (
    ParallelStreamMatcher,
    StreamingMultiMatcher,
    StreamingMultiSpanMatcher,
    StreamingSpanMatcher,
    StreamMatcher,
)

__all__ = [
    "CompiledPattern",
    "LockstepSFAMatcher",
    "MultiPatternSet",
    "ParallelSFAMatcher",
    "ParallelStreamMatcher",
    "SequentialDFAMatcher",
    "SpanEngine",
    "SpeculativeDFAMatcher",
    "StreamMatcher",
    "StreamingMultiMatcher",
    "StreamingMultiSpanMatcher",
    "StreamingSpanMatcher",
    "compile_pattern",
    "lockstep_run",
    "parallel_sfa_run",
    "sequential_run",
    "speculative_run",
]
