"""Parallel SFA computation — paper Algorithm 5.

Each chunk is scanned with *one* SFA state per thread and one table lookup
per character (the whole point of the SFA: the all-states simulation was
pre-evaluated into the automaton).  Chunk results — SFA state indices — are
then reduced sequentially (``O(p)``) or as a composition tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.automata.sfa import SFA
from repro.automata.stride import best_stride_table
from repro.errors import MatchEngineError
from repro.parallel.chunking import clamp_chunks, split_balanced
from repro.parallel.executor import ChunkExecutor, SerialExecutor
from repro.parallel.reduction import (
    sequential_reduction_dsfa,
    sequential_reduction_nsfa,
    tree_reduction_boolean,
    tree_reduction_transformations,
)
from repro.parallel.scan import KERNELS, sfa_scan
from repro.planning.plan import Plan, resolve_plan
from repro.regex.charclass import pack_stride

#: Legacy defaults of a bare ``parallel_sfa_run`` call: one chunk,
#: sequential reduction, per-byte python kernel.
_RUN_DEFAULTS = Plan(engine="sfa")


def sfa_chunk_scan(table: np.ndarray, initial: int, classes: np.ndarray) -> int:
    """Lines 1–5 of Algorithm 5 for one chunk: a plain Algorithm-2 loop."""
    return sfa_scan(table, initial, classes)


@dataclass
class ParallelSFARunResult:
    """Outcome + work accounting of an Algorithm 5 run."""

    accepted: bool
    final_states: List[int]  # S_fin: original-automaton destination states
    chunk_states: List[int]  # per-chunk SFA state indices
    num_chunks: int
    lookups: int  # total SFA table lookups (one per char)
    reduction: str = "sequential"
    reduction_ops: int = 0

    final_mapping_state: Optional[int] = field(default=None)
    # SFA state index of the ⊙-product (tree reduction only)


def parallel_sfa_run(
    sfa: SFA,
    classes: np.ndarray,
    num_chunks: Optional[int] = None,
    reduction: Optional[str] = None,
    executor: Optional[ChunkExecutor] = None,
    kernel: Optional[str] = None,
    stride_budget: Optional[int] = None,
    plan=None,
) -> ParallelSFARunResult:
    """Full Algorithm 5.

    ``plan`` bundles the strategy knobs (``"auto"`` asks the §3.10 cost
    model, costed against the SFA being scanned); explicitly-passed
    legacy knobs override it, and with no plan the legacy defaults apply
    (one chunk, sequential reduction, python kernel).

    ``reduction`` ∈ {"sequential", "tree"}; ``executor`` controls how chunk
    scans are dispatched — serial by default, a thread pool for the paper's
    pthread structure, or a :class:`~repro.parallel.executor.ProcessExecutor`
    for true multicore execution (the spans-based :meth:`scan` protocol lets
    the process backend ship shared-memory references instead of tables).

    ``kernel`` picks the chunk-scan kernel (DESIGN.md §3.5): ``"python"``
    is the reference per-byte loop, ``"stride2"``/``"stride4"`` scan a
    precomposed superalphabet table so each lookup consumes 2/4 symbols
    (degrading to the largest affordable stride — then ``"python"`` — when
    a table exceeds its byte budget; ``stride_budget`` overrides the
    default cap), and ``"vector"`` block-composes mappings in NumPy.
    ``num_chunks`` is clamped to the symbol count so no empty chunk is
    ever dispatched.
    """
    ex_instance = executor if isinstance(executor, ChunkExecutor) else None
    p = resolve_plan(
        plan, "fullmatch", len(classes), subject=sfa,
        defaults=_RUN_DEFAULTS,
        num_chunks=num_chunks, reduction=reduction,
        executor=None if ex_instance is not None else executor,
        kernel=kernel,
    )
    num_chunks, reduction, kernel = p.num_chunks, p.reduction, p.kernel
    executor = ex_instance or p.resolve_executor() or SerialExecutor()
    st = None
    if kernel in ("stride2", "stride4"):
        st = best_stride_table(
            sfa, 2 if kernel == "stride2" else 4, stride_budget
        )
    if st is not None:
        # Scan n/stride superalphabet symbols; the < stride tail of the
        # last chunk is finished with the base table after dispatch.
        packed, tail = pack_stride(classes, sfa.num_classes, st.stride)
        spans = split_balanced(len(packed), clamp_chunks(len(packed), num_chunks))
        chunk_states = list(
            executor.scan("sfa", st.table, sfa.initial, packed, spans)
        )
        if len(tail):
            chunk_states[-1] = sfa_scan(sfa.table, chunk_states[-1], tail)
        lookups = len(packed) + len(tail)
    else:
        scan_kernel = kernel if kernel == "vector" else "python"
        spans = split_balanced(len(classes), clamp_chunks(len(classes), num_chunks))
        chunk_states = list(
            executor.scan("sfa", sfa.table, sfa.initial, classes, spans, scan_kernel)
        )
        lookups = int(len(classes))

    if reduction == "sequential":
        if sfa.kind == "D-SFA":
            q = sequential_reduction_dsfa(sfa.maps, chunk_states, sfa.origin_initial)
            finals = [q]
            accepted = bool(sfa.origin_final[q])
        else:
            row = sequential_reduction_nsfa(sfa.maps, chunk_states, sfa.origin_initial)
            finals = np.nonzero(row)[0].tolist()
            accepted = bool((row & sfa.origin_final).any())
        red_ops = len(chunk_states)
        fstate = None
    elif reduction == "tree":
        if sfa.kind == "D-SFA":
            prod = tree_reduction_transformations([sfa.maps[i] for i in chunk_states])
        else:
            prod = tree_reduction_boolean([sfa.maps[i] for i in chunk_states])
        # The ⊙-product of reachable mappings is itself a reachable mapping
        # (monoid closure), so it corresponds to an SFA state.
        fstate = _locate_state(sfa, prod)
        if sfa.kind == "D-SFA":
            q = int(prod[sfa.origin_initial])
            finals = [q]
            accepted = bool(sfa.origin_final[q])
        else:
            row = np.zeros(sfa.origin_size, dtype=bool)
            for q0 in sfa.origin_initial:
                row |= prod[q0]
            finals = np.nonzero(row)[0].tolist()
            accepted = bool((row & sfa.origin_final).any())
        red_ops = max(0, len(chunk_states) - 1)
    else:
        raise MatchEngineError(f"unknown reduction {reduction!r}")

    return ParallelSFARunResult(
        accepted=accepted,
        final_states=finals,
        chunk_states=list(chunk_states),
        num_chunks=len(spans),
        lookups=lookups,
        reduction=reduction,
        reduction_ops=red_ops,
        final_mapping_state=fstate,
    )


def _locate_state(sfa: SFA, mapping: np.ndarray) -> Optional[int]:
    """Find the SFA state index holding ``mapping`` (None if not interned)."""
    if sfa.kind == "D-SFA":
        key = np.ascontiguousarray(mapping, dtype=np.int32).tobytes()
    else:
        key = np.packbits(np.ascontiguousarray(mapping, dtype=bool)).tobytes()
    try:
        return sfa._index_of_map(key)
    except Exception:
        return None


class ParallelSFAMatcher:
    """Object wrapper around Algorithm 5 for a fixed SFA."""

    name = "sfa-parallel"

    def __init__(
        self,
        sfa: SFA,
        num_chunks: int = 2,
        reduction: str = "sequential",
        executor: Optional[ChunkExecutor] = None,
        kernel: str = "python",
    ):
        if num_chunks < 1:
            raise MatchEngineError("num_chunks must be >= 1")
        if reduction not in ("sequential", "tree"):
            raise MatchEngineError(f"unknown reduction {reduction!r}")
        if kernel not in KERNELS:
            raise MatchEngineError(f"unknown kernel {kernel!r}")
        self.sfa = sfa
        self.num_chunks = num_chunks
        self.reduction = reduction
        self.executor = executor or SerialExecutor()
        self.kernel = kernel

    def run_classes(self, classes: np.ndarray) -> ParallelSFARunResult:
        return parallel_sfa_run(
            self.sfa,
            classes,
            self.num_chunks,
            self.reduction,
            self.executor,
            self.kernel,
        )

    def accepts_classes(self, classes: np.ndarray) -> bool:
        return self.run_classes(classes).accepted

    def accepts(self, data: bytes) -> bool:
        return self.accepts_classes(self.sfa.partition.translate(data))

    def lookups_per_char(self) -> float:
        """Table lookups per char (Table II: exactly 1, SFA's key property)."""
        return 1.0
