"""High-level public API: compile once, match many ways.

:func:`compile_pattern` runs the paper's four-step pipeline (Sect. VI):

1. regex → NFA (McNaughton–Yamada position construction),
2. NFA → DFA (subset construction, then minimization),
3. DFA → D-SFA (correspondence construction),
4. matching via Algorithm 2 / 3 / 5 or the lockstep engine.

Every stage is built lazily and cached, so callers pay only for what they
use (e.g. a pure-DFA user never builds the SFA, and ``contains`` builds a
separate search automaton on demand).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.automata.dfa import DFA, minimize, subset_construction
from repro.automata.lazy import LazyDFA, LazySFA
from repro.automata.nfa import NFA, glushkov_nfa
from repro.automata.sfa import SFA, correspondence_construction
from repro.errors import MatchEngineError, StateExplosionError
from repro.matching.lockstep import lockstep_run
from repro.matching.parallel_sfa import parallel_sfa_run
from repro.matching.sequential import SequentialDFAMatcher
from repro.matching.speculative import speculative_run
from repro.parallel.executor import ChunkExecutor
from repro.planning.plan import Plan, PlanArg, resolve_plan
from repro.regex.ast import Concat, Literal, Node, Star
from repro.regex.charclass import ByteClassPartition, CharSet
from repro.regex.parser import parse

DEFAULT_MAX_DFA_STATES = 100_000
DEFAULT_MAX_SFA_STATES = 2_000_000

#: Legacy default strategy of :meth:`CompiledPattern.contains` (pre-planner
#: behaviour when ``plan=None`` and no knobs are passed).
_CONTAINS_DEFAULTS = Plan(engine="lockstep", num_chunks=8)


class CompiledPattern:
    """A compiled regular expression with DFA / SFA matching back ends.

    Construction is staged and cached: ``.nfa``, ``.dfa``, ``.min_dfa``,
    ``.sfa`` properties each build (and memoize) one pipeline stage.
    """

    def __init__(
        self,
        pattern: str,
        *,
        ignore_case: bool = False,
        dotall: bool = False,
        max_dfa_states: int = DEFAULT_MAX_DFA_STATES,
        max_sfa_states: int = DEFAULT_MAX_SFA_STATES,
        minimize_dfa: bool = True,
        optimize: bool = False,
    ):
        self.pattern = pattern
        self.ignore_case = ignore_case
        self.dotall = dotall
        self.max_dfa_states = max_dfa_states
        self.max_sfa_states = max_sfa_states
        self.minimize_dfa = minimize_dfa
        self.optimize = optimize
        self.rewrites: tuple = ()
        self.ast: Node = parse(pattern, ignore_case=ignore_case, dotall=dotall)
        if optimize:
            # §3.13 canonicalization: language-preserving, so matching is
            # bit-identical; everything downstream (facts, literals, span
            # engine, planner) works off the smaller rewritten AST.
            from repro.analysis.rewrite import rewrite

            res = rewrite(self.ast)
            self.ast = res.node
            self.rewrites = res.fired
        # Build the partition from the *search-augmented* charset list so the
        # membership and containment automata share one alphabet.
        charsets = list(self.ast.charsets()) + [CharSet.any_byte()]
        self.partition = ByteClassPartition(charsets)
        self._nfa: Optional[NFA] = None
        self._dfa: Optional[DFA] = None
        self._min_dfa: Optional[DFA] = None
        self._sfa: Optional[SFA] = None
        self._nsfa: Optional[SFA] = None
        self._search: Optional["CompiledPattern"] = None
        self._spans = None  # SpanEngine, built on first find/finditer
        self._facts = None  # PatternFacts, built on first facts()/auto plan

    # -- pipeline stages -------------------------------------------------
    @property
    def nfa(self) -> NFA:
        """McNaughton–Yamada position NFA of the pattern."""
        if self._nfa is None:
            self._nfa = glushkov_nfa(self.ast, self.partition)
        return self._nfa

    @property
    def dfa(self) -> DFA:
        """Subset-construction DFA (unminimized)."""
        if self._dfa is None:
            self._dfa = subset_construction(self.nfa, max_states=self.max_dfa_states)
        return self._dfa

    @property
    def min_dfa(self) -> DFA:
        """Minimal DFA (what the paper builds its D-SFA from)."""
        if self._min_dfa is None:
            self._min_dfa = minimize(self.dfa) if self.minimize_dfa else self.dfa
        return self._min_dfa

    @property
    def sfa(self) -> SFA:
        """D-SFA built from the minimal DFA by correspondence construction."""
        if self._sfa is None:
            self._sfa = correspondence_construction(
                self.min_dfa, max_states=self.max_sfa_states
            )
        return self._sfa

    @property
    def nsfa(self) -> SFA:
        """N-SFA built directly from the NFA (for size/ablation studies)."""
        if self._nsfa is None:
            self._nsfa = correspondence_construction(
                self.nfa, max_states=self.max_sfa_states
            )
        return self._nsfa

    def lazy_dfa(self) -> LazyDFA:
        """A fresh on-the-fly DFA (Sect. V-A)."""
        return LazyDFA(self.nfa)

    def lazy_sfa(self) -> LazySFA:
        """A fresh on-the-fly D-SFA over the minimal DFA."""
        return LazySFA(self.min_dfa)

    def facts(self):
        """Static analysis facts of the pattern (cached; the planner's
        pattern-structure input — DESIGN.md §3.9/§3.10)."""
        if self._facts is None:
            from repro.analysis.facts import compute_facts

            self._facts = compute_facts(self.ast, partition=self.partition)
        return self._facts

    # -- matching -----------------------------------------------------------
    def translate(self, data: Union[bytes, bytearray, memoryview]) -> np.ndarray:
        """Byte→class translation of an input (vectorized, zero-copy)."""
        return self.partition.translate(data)

    def fullmatch(
        self,
        data: Union[bytes, bytearray, memoryview],
        *,
        plan: PlanArg = None,
        engine: Optional[str] = None,
        num_chunks: Optional[int] = None,
        reduction: Optional[str] = None,
        executor=None,
        num_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> bool:
        """Whole-input membership test ``data ∈ L(pattern)``.

        ``plan`` selects the whole execution strategy at once: ``None``
        (the legacy default — Algorithm 2 on the minimal DFA), ``"auto"``
        (the §3.10 cost model picks engine/kernel/chunking from input
        length, pattern facts, core count and calibration), or an explicit
        :class:`~repro.planning.plan.Plan`.

        The legacy knobs remain accepted and, when passed explicitly,
        override the corresponding plan field (back-compat pin):

        * ``engine`` ∈ {"dfa", "speculative", "sfa", "lockstep"} — ``dfa``
          is Algorithm 2, ``speculative`` Algorithm 3, ``sfa`` Algorithm 5
          and ``lockstep`` its vectorized form; ``num_chunks`` is the
          paper's thread count ``p``;
        * ``executor`` — chunk-dispatch backend for the chunked engines
          (``"sfa"``/``"speculative"``): ``None`` (serial), a backend name
          in {"serial", "threads", "processes"} — resolved to a warm
          process-wide pool of ``num_workers`` workers — or any
          :class:`~repro.parallel.executor.ChunkExecutor` instance.  The
          single-scan engines (``"dfa"``, ``"lockstep"``) ignore it;
        * ``kernel`` ∈ {"python", "stride2", "stride4", "vector"} — the
          chunk-scan kernel (DESIGN.md §3.5) for the ``speculative``,
          ``sfa`` and ``lockstep`` engines; the stride kernels precompose
          the transition table over 2-/4-grams (budget-permitting) so each
          lookup consumes several symbols.  ``"dfa"`` ignores it
          (Algorithm 2 is the paper's scalar baseline).

        Results are plan-invariant: every resolution scans the same
        automata and returns the same verdict.
        """
        classes = self.translate(data)
        p = resolve_plan(
            plan, "fullmatch", len(classes), subject=self,
            engine=engine, num_chunks=num_chunks, reduction=reduction,
            executor=executor, num_workers=num_workers, kernel=kernel,
        )
        return self._run_plan(
            p, classes,
            executor if isinstance(executor, ChunkExecutor) else None,
        )

    def _run_plan(
        self,
        p: Plan,
        classes: np.ndarray,
        ex_instance: Optional[ChunkExecutor] = None,
    ) -> bool:
        """Execute a resolved acceptance plan over translated input.

        ``ex_instance`` carries a caller-supplied executor *object* (plans
        only hold backend names).  Plans the cost model chose itself fall
        back to the serial DFA walk if the D-SFA construction blows its
        state budget — an auto plan must never fail where the python
        baseline succeeds.
        """
        try:
            if p.engine == "dfa":
                return bool(
                    self.min_dfa.accept[
                        SequentialDFAMatcher(self.min_dfa).run_classes(classes)
                    ]
                )
            # Resolve lazily: the single-scan engines must not spin up a pool.
            if p.engine == "speculative":
                return speculative_run(
                    self.min_dfa, classes, p.num_chunks, p.reduction,
                    ex_instance or p.resolve_executor(), p.kernel,
                ).accepted
            if p.engine == "sfa":
                return parallel_sfa_run(
                    self.sfa, classes, p.num_chunks, p.reduction,
                    ex_instance or p.resolve_executor(), p.kernel,
                ).accepted
            if p.engine == "lockstep":
                return lockstep_run(
                    self.sfa, classes, p.num_chunks, p.kernel
                ).accepted
        except StateExplosionError:
            if p.source != "auto":
                raise
            return bool(
                self.min_dfa.accept[
                    SequentialDFAMatcher(self.min_dfa).run_classes(classes)
                ]
            )
        raise MatchEngineError(f"unknown engine {p.engine!r}")

    def contains(
        self,
        data: Union[bytes, bytearray, memoryview],
        *,
        plan: PlanArg = None,
        engine: Optional[str] = None,
        num_chunks: Optional[int] = None,
        executor=None,
        num_workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> bool:
        """Substring-search semantics: does any substring match?

        Implemented as membership in ``Σ* · L · Σ*`` (the IDS use case —
        SNORT rules are matched against packet payloads this way).  The
        plan/knob semantics match :meth:`fullmatch`; the legacy default is
        the lockstep engine with 8 chunks, and auto plans are costed
        against the containment automaton (the one actually scanned).
        """
        sp = self.search_pattern()
        classes = sp.translate(data)
        p = resolve_plan(
            plan, "contains", len(classes), subject=sp,
            defaults=_CONTAINS_DEFAULTS,
            engine=engine, num_chunks=num_chunks,
            executor=executor, num_workers=num_workers, kernel=kernel,
        )
        return sp._run_plan(
            p, classes,
            executor if isinstance(executor, ChunkExecutor) else None,
        )

    def search_pattern(self) -> "CompiledPattern":
        """The compiled ``Σ* · pattern · Σ*`` containment automaton."""
        if self._search is None:
            self._search = _SearchPattern(self)
        return self._search

    # -- span extraction -------------------------------------------------
    def span_engine(self):
        """The pattern's :class:`~repro.matching.spans.SpanEngine` (cached)."""
        if self._spans is None:
            from repro.matching.spans import SpanEngine

            self._spans = SpanEngine(self)
        return self._spans

    def finditer(
        self,
        data: Union[bytes, bytearray, memoryview],
        *,
        plan: PlanArg = None,
        num_chunks: Optional[int] = None,
        executor=None,
        num_workers: Optional[int] = None,
        kernel: Optional[str] = None,
        prefilter: Optional[bool] = None,
    ):
        """Iterate the leftmost-longest non-overlapping ``(start, end)``
        spans of the pattern in ``data`` (DESIGN.md §3.7).

        ``plan`` resolves exactly as in :meth:`fullmatch`; the legacy
        knobs ``num_chunks``/``executor``/``num_workers``/``kernel``
        parallelize the whole-input start pass and override the plan when
        passed.  Spans are invariant under all of them.
        ``prefilter=False`` disables the literal skip-ahead (§3.9.3);
        spans are invariant under that too.  Semantics match
        ``re.finditer`` except that alternation resolves to the *longest*
        branch (POSIX leftmost-longest) rather than the first.
        """
        return iter(
            self.span_engine().spans(
                data, plan=plan, num_chunks=num_chunks, executor=executor,
                num_workers=num_workers, kernel=kernel, prefilter=prefilter,
            )
        )

    def find(
        self,
        data: Union[bytes, bytearray, memoryview],
        **knobs,
    ) -> Optional[tuple]:
        """First leftmost-longest span, or ``None``.  Knobs as
        :meth:`finditer`."""
        spans = self.span_engine().spans(data, limit=1, **knobs)
        return spans[0] if spans else None

    def count(
        self,
        data: Union[bytes, bytearray, memoryview],
        **knobs,
    ) -> int:
        """Number of non-overlapping matches.  Knobs as :meth:`finditer`."""
        return len(self.span_engine().spans(data, **knobs))

    def findall(
        self,
        data: Union[bytes, bytearray, memoryview],
        **knobs,
    ) -> List[bytes]:
        """The matched byte strings, in order.  Knobs as :meth:`finditer`."""
        buf = data if isinstance(data, (bytes, bytearray)) else memoryview(data)
        return [
            bytes(buf[s:e])
            for s, e in self.span_engine().spans(data, **knobs)
        ]

    # -- reporting -------------------------------------------------------
    def sizes(self) -> dict:
        """State counts of every pipeline stage (builds them all)."""
        return {
            "nfa": self.nfa.size,
            "dfa": self.dfa.size,
            "min_dfa": self.min_dfa.size,
            "d_sfa": self.sfa.size,
        }

    def __repr__(self) -> str:
        return f"CompiledPattern({self.pattern!r})"


class _SearchPattern(CompiledPattern):
    """Internal: containment automaton sharing the parent's partition."""

    def __init__(self, parent: CompiledPattern):
        # Bypass CompiledPattern.__init__ parsing; wrap the parent's AST.
        self.pattern = f"(?:.|\\n)*(?:{parent.pattern})(?:.|\\n)*"
        self.ignore_case = parent.ignore_case
        self.dotall = parent.dotall
        self.max_dfa_states = parent.max_dfa_states
        self.max_sfa_states = parent.max_sfa_states
        self.minimize_dfa = parent.minimize_dfa
        self.optimize = parent.optimize  # parent AST is already rewritten
        self.rewrites = parent.rewrites
        any_star = Star(Literal(CharSet.any_byte()))
        self.ast = Concat([any_star, parent.ast, any_star])
        self.partition = parent.partition
        self._nfa = None
        self._dfa = None
        self._min_dfa = None
        self._sfa = None
        self._nsfa = None
        self._spans = None
        self._facts = None
        self._search = self  # searching a search pattern is idempotent


def compile_pattern(
    pattern: str,
    *,
    ignore_case: bool = False,
    dotall: bool = False,
    max_dfa_states: int = DEFAULT_MAX_DFA_STATES,
    max_sfa_states: int = DEFAULT_MAX_SFA_STATES,
    optimize: bool = False,
) -> CompiledPattern:
    """Compile a regex into a :class:`CompiledPattern` (the main entry point).

    ``optimize`` canonicalizes the AST first (DESIGN.md §3.13) — the
    language, and therefore every match result, is unchanged, but
    redundant structure (duplicate alternatives, unfused runs, mergeable
    classes) is gone before determinization pays for it.

    >>> m = compile_pattern("(ab)*")
    >>> m.fullmatch(b"abab")
    True
    >>> m.fullmatch(b"abab", engine="lockstep", num_chunks=4)
    True
    """
    return CompiledPattern(
        pattern,
        ignore_case=ignore_case,
        dotall=dotall,
        max_dfa_states=max_dfa_states,
        max_sfa_states=max_sfa_states,
        optimize=optimize,
    )
