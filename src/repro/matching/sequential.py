"""Sequential DFA computation — paper Algorithm 2.

The baseline every parallel engine is compared against: one table lookup per
input symbol, a single live state.  Two implementations:

* :func:`sequential_run` — the straight Python loop over a flattened table
  (the honest scalar baseline; CPython's per-iteration cost plays the role
  of the paper's per-character cycle cost);
* :meth:`SequentialDFAMatcher.run_strided` — a cache-measurement variant
  that also records the state-visit trace for the cache simulator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.sfa import SFA


def sequential_run(table: np.ndarray, start: int, classes: np.ndarray) -> int:
    """Run Algorithm 2 over ``classes``; return the destination state.

    ``table`` is ``(n, k)``; the loop reads a flattened copy so each step is
    one index computation plus one list lookup — the fastest pure-Python
    formulation (avoids numpy scalar boxing in the hot loop).
    """
    k = table.shape[1]
    flat = table.ravel().tolist()
    q = start
    for c in classes.tolist():
        q = flat[q * k + c]
    return q


def sequential_run_trace(
    table: np.ndarray, start: int, classes: np.ndarray
) -> Tuple[int, np.ndarray]:
    """Like :func:`sequential_run` but also return the visited-state trace.

    ``trace[i]`` is the state *from which* the ``i``-th lookup was made;
    the cache simulator turns ``(trace, classes)`` into table addresses.
    """
    k = table.shape[1]
    flat = table.ravel().tolist()
    q = start
    trace = np.empty(len(classes), dtype=np.int64)
    for i, c in enumerate(classes.tolist()):
        trace[i] = q
        q = flat[q * k + c]
    return q, trace


class SequentialDFAMatcher:
    """Object wrapper around Algorithm 2 for a fixed DFA."""

    name = "dfa-sequential"

    def __init__(self, dfa: DFA):
        self.dfa = dfa
        self._flat = dfa.table.ravel().tolist()
        self._k = dfa.num_classes

    def run_classes(self, classes: np.ndarray, start: Optional[int] = None) -> int:
        q = self.dfa.initial if start is None else start
        k = self._k
        flat = self._flat
        for c in classes.tolist():
            q = flat[q * k + c]
        return q

    def accepts_classes(self, classes: np.ndarray) -> bool:
        return bool(self.dfa.accept[self.run_classes(classes)])

    def accepts(self, data: bytes) -> bool:
        return self.accepts_classes(self.dfa.partition.translate(data))

    def state_trace(self, classes: np.ndarray) -> np.ndarray:
        """Visited-state trace (for the cache model)."""
        _, trace = sequential_run_trace(self.dfa.table, self.dfa.initial, classes)
        return trace

    def lookups_per_char(self) -> float:
        """Table lookups per input character (Table II: exactly 1)."""
        return 1.0


class SequentialSFAMatcher:
    """Algorithm 2 applied to an SFA's own table (SFA are DFAs too).

    Used by the overhead study: a *sequential* SFA run costs exactly one
    lookup per character, like the DFA — the table is just bigger.
    """

    name = "sfa-sequential"

    def __init__(self, sfa: SFA):
        self.sfa = sfa
        self._flat = sfa.table.ravel().tolist()
        self._k = sfa.num_classes

    def run_classes(self, classes: np.ndarray, start: Optional[int] = None) -> int:
        f = self.sfa.initial if start is None else start
        k = self._k
        flat = self._flat
        for c in classes.tolist():
            f = flat[f * k + c]
        return f

    def accepts_classes(self, classes: np.ndarray) -> bool:
        return bool(self.sfa.accept[self.run_classes(classes)])

    def accepts(self, data: bytes) -> bool:
        return self.accepts_classes(self.sfa.partition.translate(data))
