"""State mappings: the *states of an SFA*.

Definition 5 of the paper makes an SFA state a mapping ``f : Q → P(Q)`` over
the states of the original automaton.  Two concrete representations:

* :class:`Transformation` — when the original automaton is deterministic the
  image of every state is a singleton, so ``f`` collapses to ``Q → Q``,
  stored as a NumPy ``int32`` vector (``arr[q]`` is the image of ``q``).
* :class:`Correspondence` — the general ``Q → P(Q)`` case, stored as an
  ``n×n`` boolean matrix (``mat[q, r]`` iff ``r ∈ f(q)``).

Both carry the associative composition ``⊙`` (reverse composition:
``(f ⊙ g)(q) = g(f(q))`` — *apply f first, then g*), matching how chunk
results are combined left-to-right in Algorithm 5.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.errors import AutomatonError


class Transformation:
    """A total map ``Q → Q`` backed by an int vector; hashable, immutable."""

    __slots__ = ("arr", "_key")

    def __init__(self, arr: np.ndarray | Iterable[int]):
        a = np.ascontiguousarray(np.asarray(arr, dtype=np.int32))
        if a.ndim != 1:
            raise AutomatonError("Transformation must be a 1-D vector")
        n = a.shape[0]
        if a.size and (a.min() < 0 or a.max() >= n):
            raise AutomatonError("Transformation image out of range")
        a.setflags(write=False)
        self.arr = a
        self._key = a.tobytes()

    @classmethod
    def identity(cls, n: int) -> "Transformation":
        """``f_I`` — the identity mapping (initial SFA state)."""
        return cls(np.arange(n, dtype=np.int32))

    @property
    def domain_size(self) -> int:
        return self.arr.shape[0]

    def __call__(self, q: int) -> int:
        return int(self.arr[q])

    def then(self, other: "Transformation") -> "Transformation":
        """``self ⊙ other``: apply ``self`` first, then ``other``."""
        return Transformation(other.arr[self.arr])

    def compose(self, other: "Transformation") -> "Transformation":
        """Classic composition ``self ∘ other``: apply ``other`` first."""
        return Transformation(self.arr[other.arr])

    def is_identity(self) -> bool:
        return bool(np.array_equal(self.arr, np.arange(self.domain_size)))

    def is_constant(self) -> bool:
        """True iff every state maps to the same image (rank 1)."""
        return self.arr.size > 0 and bool((self.arr == self.arr[0]).all())

    def rank(self) -> int:
        """Number of distinct images — the transformation's rank."""
        return int(np.unique(self.arr).size)

    def image(self) -> np.ndarray:
        return np.unique(self.arr)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transformation) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        body = ",".join(map(str, self.arr[:12]))
        if self.domain_size > 12:
            body += ",..."
        return f"Transformation([{body}])"


class Correspondence:
    """A total map ``Q → P(Q)`` backed by a boolean matrix; hashable."""

    __slots__ = ("mat", "_key")

    def __init__(self, mat: np.ndarray):
        m = np.ascontiguousarray(np.asarray(mat, dtype=bool))
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise AutomatonError("Correspondence must be a square matrix")
        m.setflags(write=False)
        self.mat = m
        self._key = np.packbits(m).tobytes()

    @classmethod
    def identity(cls, n: int) -> "Correspondence":
        return cls(np.eye(n, dtype=bool))

    @classmethod
    def from_transformation(cls, t: Transformation) -> "Correspondence":
        n = t.domain_size
        m = np.zeros((n, n), dtype=bool)
        m[np.arange(n), t.arr] = True
        return cls(m)

    @property
    def domain_size(self) -> int:
        return self.mat.shape[0]

    def __call__(self, q: int) -> List[int]:
        return np.nonzero(self.mat[q])[0].tolist()

    def then(self, other: "Correspondence") -> "Correspondence":
        """``self ⊙ other``: apply ``self`` first, then ``other``.

        ``(f ⊙ g)(q) = ∪_{r ∈ f(q)} g(r)`` — a boolean matrix product.
        """
        prod = (self.mat.astype(np.uint8) @ other.mat.astype(np.uint8)) > 0
        return Correspondence(prod)

    def compose(self, other: "Correspondence") -> "Correspondence":
        """Classic composition ``self ∘ other`` (apply ``other`` first)."""
        return other.then(self)

    def apply_set(self, mask_row: np.ndarray) -> np.ndarray:
        """Image of a state set given as a boolean vector."""
        return (mask_row.astype(np.uint8) @ self.mat.astype(np.uint8)) > 0

    def is_identity(self) -> bool:
        return bool(np.array_equal(self.mat, np.eye(self.domain_size, dtype=bool)))

    def is_functional(self) -> bool:
        """True iff every image is a singleton (i.e. it is a transformation)."""
        return bool((self.mat.sum(axis=1) == 1).all())

    def to_transformation(self) -> Transformation:
        if not self.is_functional():
            raise AutomatonError("correspondence is not functional")
        return Transformation(np.argmax(self.mat, axis=1).astype(np.int32))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Correspondence) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        return f"Correspondence(n={self.domain_size}, edges={int(self.mat.sum())})"


def compose_chain_transformations(parts: Iterable[Transformation]) -> Transformation:
    """Left-to-right ``⊙``-fold of transformations (tree-free reference)."""
    parts = list(parts)
    if not parts:
        raise ValueError("empty composition chain")
    acc = parts[0]
    for p in parts[1:]:
        acc = acc.then(p)
    return acc


def compose_chain_correspondences(parts: Iterable[Correspondence]) -> Correspondence:
    """Left-to-right ``⊙``-fold of correspondences."""
    parts = list(parts)
    if not parts:
        raise ValueError("empty composition chain")
    acc = parts[0]
    for p in parts[1:]:
        acc = acc.then(p)
    return acc
