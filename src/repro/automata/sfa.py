"""Simultaneous finite automata (paper Sect. IV–V).

An SFA's states are mappings over the original automaton's states; its
transition on symbol class ``c`` sends mapping ``f`` to ``f ⊙ δ_c``.  The
*correspondence construction* (paper Algorithm 4) explores exactly the
mappings reachable from the identity — which is the transition monoid of the
original automaton (plus the identity), the algebraic fact behind the
Sect. VII syntactic-monoid discussion.

Both flavours are supported:

* **D-SFA** (from a DFA): states are :class:`Transformation` vectors; the
  construction step is one vectorized gather ``f_next = table[:, c][f]``.
* **N-SFA** (from an NFA): states are :class:`Correspondence` boolean
  matrices; the step is a boolean matrix product with the letter matrix.

The SFA itself is stored exactly like a DFA — a dense ``int32`` transition
table — plus the per-state mapping payload needed for reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import AutomatonError, StateExplosionError
from repro.regex.charclass import ByteClassPartition
from repro.util.bitset import bits_of


@dataclass
class SFA:
    """An SFA ``(Q_s, Σ, δ_s, {f_I}, F_s)``.

    Attributes
    ----------
    table:
        ``int32`` array ``(num_states, num_classes)`` — ``δ_s`` by table
        lookup, exactly like a DFA (SFA are deterministic by construction).
    initial:
        index of the identity mapping ``f_I`` (always state 0).
    accept:
        ``F_s`` membership per SFA state: ``∃q ∈ I. f(q) ∩ F ≠ ∅``.
    maps:
        mapping payloads.  For a D-SFA an ``(num_states, n)`` int32 array
        (row ``i`` is the transformation of SFA state ``i``); for an N-SFA
        an ``(num_states, n, n)`` boolean array of correspondence matrices.
    kind:
        ``"D-SFA"`` or ``"N-SFA"``.
    origin_initial / origin_final:
        the original automaton's initial state(s) and final-state mask,
        needed to finish a reduced computation.
    """

    table: np.ndarray
    initial: int
    accept: np.ndarray
    maps: np.ndarray
    kind: str
    origin_initial: Union[int, List[int]]
    origin_final: np.ndarray
    partition: Optional[ByteClassPartition] = None

    def __post_init__(self) -> None:
        self.table = np.ascontiguousarray(self.table, dtype=np.int32)
        self.accept = np.ascontiguousarray(self.accept, dtype=bool)
        if self.kind not in ("D-SFA", "N-SFA"):
            raise AutomatonError(f"unknown SFA kind {self.kind!r}")

    # -- basic properties ----------------------------------------------
    @property
    def num_states(self) -> int:
        return self.table.shape[0]

    @property
    def num_classes(self) -> int:
        return self.table.shape[1]

    @property
    def size(self) -> int:
        """``|S|`` — the number of SFA states."""
        return self.num_states

    @property
    def num_materialized(self) -> int:
        """States created so far — for an eager SFA, all of them (the
        :class:`~repro.automata.backend.AutomatonBackend` view)."""
        return self.num_states

    @property
    def origin_size(self) -> int:
        """Number of states of the original automaton."""
        return self.maps.shape[1]

    def table_bytes(self, expanded: bool = False) -> int:
        """Transition-table footprint; ``expanded`` = paper's 1 KB/state."""
        width = 256 if expanded else self.num_classes
        return self.num_states * width * 4

    def trap_states(self) -> np.ndarray:
        """Non-accepting SFA states with only self-loops.

        For a D-SFA built from a complete DFA this is the all-dead mapping
        (every original state sent to the fail sink) — the state a
        partial-map implementation keeps implicit.
        """
        self_loop = (self.table == np.arange(self.num_states)[:, None]).all(axis=1)
        return np.nonzero(self_loop & ~self.accept)[0]

    @property
    def partial_size(self) -> int:
        """State count under the partial-mapping convention (paper's tool).

        Excludes trap mappings; ``r_5``'s D-SFA is 109 in the paper and 110
        here (the +1 being the explicit all-dead mapping).
        """
        return self.num_states - len(self.trap_states())

    # -- execution --------------------------------------------------------
    def run_classes(self, classes, start: Optional[int] = None) -> int:
        """Scan a class sequence; return the reached SFA state index."""
        f = self.initial if start is None else start
        table = self.table
        for c in classes:
            f = table[f, c]
        return int(f)

    def accepts_classes(self, classes) -> bool:
        return bool(self.accept[self.run_classes(classes)])

    def accepts(self, data: bytes) -> bool:
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))

    def stride_table(self, stride: int, max_table_bytes: Optional[int] = None):
        """Budget-capped ``stride``-gram precomposition of the table.

        Returns a :class:`~repro.automata.stride.StrideTable` (memoized on
        this SFA) or ``None`` when ``|S|·k^stride`` entries exceed the
        table-byte budget — callers fall back to the 1-gram table.
        """
        from repro.automata.stride import cached_stride_table

        return cached_stride_table(self, stride, max_table_bytes)

    # -- mapping algebra ----------------------------------------------------
    def mapping_row(self, idx: int) -> np.ndarray:
        """The mapping payload of SFA state ``idx``."""
        return self.maps[idx]

    def apply_mapping(self, idx: int, state: int) -> Union[int, np.ndarray]:
        """Apply state ``idx``'s mapping to an original-automaton state.

        For a D-SFA returns the image state; for an N-SFA returns the
        boolean image row.
        """
        if self.kind == "D-SFA":
            return int(self.maps[idx, state])
        return self.maps[idx, state]

    def compose_indices(self, i: int, j: int) -> int:
        """Index of ``f_i ⊙ f_j`` (apply ``i`` first, then ``j``).

        The reachable mappings are closed under ``⊙`` (they form the
        transition monoid), so the result is always a valid SFA state.
        Uses a lazily-populated cache.
        """
        cache = self._compose_cache()
        key = (i, j)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if self.kind == "D-SFA":
            composed = self.maps[j][self.maps[i]]
            out = self._index_of_map(composed.tobytes())
        else:
            composed = (self.maps[i].astype(np.uint8) @ self.maps[j].astype(np.uint8)) > 0
            out = self._index_of_map(np.packbits(composed).tobytes())
        cache[key] = out
        return out

    def _compose_cache(self) -> Dict:
        cache = getattr(self, "_ccache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_ccache", cache)
        return cache

    def _index_of_map(self, key: bytes) -> int:
        index = getattr(self, "_map_index", None)
        if index is None:
            index = {}
            if self.kind == "D-SFA":
                for i in range(self.num_states):
                    index[self.maps[i].tobytes()] = i
            else:
                for i in range(self.num_states):
                    index[np.packbits(self.maps[i]).tobytes()] = i
            object.__setattr__(self, "_map_index", index)
        try:
            return index[key]
        except KeyError:
            raise AutomatonError("composition left the SFA state set") from None

    def final_verdict_from_mapping(self, idx: int) -> bool:
        """Accept/reject from a (possibly reduced) final mapping index."""
        return bool(self.accept[idx])

    def final_states_of_mapping(self, idx: int) -> List[int]:
        """``S_fin`` of Algorithm 5: image of the initial state(s)."""
        if self.kind == "D-SFA":
            return [int(self.maps[idx, self.origin_initial])]
        row = np.zeros(self.origin_size, dtype=bool)
        for q in self.origin_initial:
            row |= self.maps[idx, q]
        return np.nonzero(row)[0].tolist()

    def __repr__(self) -> str:
        return (
            f"SFA(kind={self.kind}, states={self.num_states}, "
            f"classes={self.num_classes}, origin={self.origin_size})"
        )


# ---------------------------------------------------------------------------
# Correspondence construction (paper Algorithm 4)
# ---------------------------------------------------------------------------


def correspondence_construction(
    automaton: Union[DFA, NFA], max_states: Optional[int] = None
) -> SFA:
    """Build an SFA from a DFA (→ D-SFA) or an NFA (→ N-SFA).

    The BFS over mappings mirrors subset construction: start at the identity
    mapping, close under "step every original state one symbol".  The bound
    is ``n^n`` (D-SFA) / ``2^{n²}`` (N-SFA) by Theorem 2; ``max_states``
    converts a blow-up into :class:`~repro.errors.StateExplosionError`.
    """
    if isinstance(automaton, DFA):
        return _construct_dsfa(automaton, max_states)
    if isinstance(automaton, NFA):
        return _construct_nsfa(automaton, max_states)
    raise TypeError(f"cannot build an SFA from {type(automaton).__name__}")


def _construct_dsfa(dfa: DFA, max_states: Optional[int]) -> SFA:
    n = dfa.num_states
    k = dfa.num_classes
    columns = [np.ascontiguousarray(dfa.table[:, c]) for c in range(k)]

    identity = np.arange(n, dtype=np.int32)
    index: Dict[bytes, int] = {identity.tobytes(): 0}
    maps: List[np.ndarray] = [identity]
    rows: List[List[int]] = []
    i = 0
    while i < len(maps):
        f = maps[i]
        row = [0] * k
        for c in range(k):
            # f_next(q) = δ(f(q), c) — one vectorized gather.
            fnext = columns[c][f]
            key = fnext.tobytes()
            idx = index.get(key)
            if idx is None:
                if max_states is not None and len(maps) >= max_states:
                    raise StateExplosionError(
                        "correspondence construction exceeded state budget",
                        max_states,
                        len(maps) + 1,
                    )
                idx = len(maps)
                index[key] = idx
                maps.append(np.ascontiguousarray(fnext))
            row[c] = idx
        rows.append(row)
        i += 1

    table = np.array(rows, dtype=np.int32)
    maps_arr = np.stack(maps).astype(np.int32)
    # f ∈ F_s  ⟺  f(q0) ∈ F
    accept = dfa.accept[maps_arr[:, dfa.initial]]
    origin_final = dfa.accept.copy()
    return SFA(
        table=table,
        initial=0,
        accept=np.ascontiguousarray(accept),
        maps=maps_arr,
        kind="D-SFA",
        origin_initial=dfa.initial,
        origin_final=origin_final,
        partition=dfa.partition,
    )


def _construct_nsfa(nfa: NFA, max_states: Optional[int]) -> SFA:
    n = nfa.num_states
    k = nfa.num_classes
    letters = nfa.class_matrices().astype(np.uint8)  # (k, n, n)

    identity = np.eye(n, dtype=bool)
    index: Dict[bytes, int] = {np.packbits(identity).tobytes(): 0}
    maps: List[np.ndarray] = [identity]
    rows: List[List[int]] = []
    init_states = bits_of(nfa.initial)
    i = 0
    while i < len(maps):
        f = maps[i]
        row = [0] * k
        fu = f.astype(np.uint8)
        for c in range(k):
            fnext = (fu @ letters[c]) > 0
            key = np.packbits(fnext).tobytes()
            idx = index.get(key)
            if idx is None:
                if max_states is not None and len(maps) >= max_states:
                    raise StateExplosionError(
                        "correspondence construction exceeded state budget",
                        max_states,
                        len(maps) + 1,
                    )
                idx = len(maps)
                index[key] = idx
                maps.append(fnext)
            row[c] = idx
        rows.append(row)
        i += 1

    table = np.array(rows, dtype=np.int32)
    maps_arr = np.stack(maps)
    final_row = np.zeros(n, dtype=bool)
    for q in bits_of(nfa.final):
        final_row[q] = True
    # f ∈ F_s ⟺ ∃q ∈ I. f(q) ∩ F ≠ ∅
    accept = np.zeros(len(maps), dtype=bool)
    for idx in range(len(maps)):
        for q in init_states:
            if (maps_arr[idx, q] & final_row).any():
                accept[idx] = True
                break
    return SFA(
        table=table,
        initial=0,
        accept=accept,
        maps=maps_arr,
        kind="N-SFA",
        origin_initial=init_states,
        origin_final=final_row,
        partition=nfa.partition,
    )
