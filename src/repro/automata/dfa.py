"""Deterministic finite automata: subset construction and minimization.

The DFA transition function is a dense NumPy ``int32`` table of shape
``(num_states, num_classes)`` — the "table-look-up technique" the paper uses
for both DFA and SFA matching.  Subset construction is paper Algorithm 1;
minimization offers a vectorized Moore refinement (default) and classic
Hopcroft (cross-checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.automata.nfa import NFA
from repro.errors import AutomatonError, StateExplosionError
from repro.regex.charclass import ByteClassPartition
from repro.util.bitset import iter_bits


@dataclass
class DFA:
    """A complete DFA over the class-compressed alphabet.

    Attributes
    ----------
    table:
        ``int32`` array of shape ``(num_states, num_classes)``;
        ``table[q, c]`` is ``δ(q, c)``.  The DFA is always complete.
    initial:
        the start state index.
    accept:
        boolean array of shape ``(num_states,)``.
    partition:
        byte-class partition used to translate raw bytes, or ``None``.
    subset_of:
        for DFAs produced by subset construction, ``subset_of[q]`` is the
        bitmask of NFA states this DFA state stands for (else ``None``).
    """

    table: np.ndarray
    initial: int
    accept: np.ndarray
    partition: Optional[ByteClassPartition] = None
    subset_of: Optional[List[int]] = None

    def __post_init__(self) -> None:
        self.table = np.ascontiguousarray(self.table, dtype=np.int32)
        self.accept = np.ascontiguousarray(self.accept, dtype=bool)
        n, _ = self.table.shape
        if self.accept.shape != (n,):
            raise AutomatonError("accept length != num_states")
        if not (0 <= self.initial < n):
            raise AutomatonError("initial state out of range")
        if self.table.size and (self.table.min() < 0 or self.table.max() >= n):
            raise AutomatonError("transition target out of range")

    # -- basic properties ---------------------------------------------
    @property
    def num_states(self) -> int:
        return self.table.shape[0]

    @property
    def num_classes(self) -> int:
        return self.table.shape[1]

    @property
    def size(self) -> int:
        """``|D|`` — the number of states."""
        return self.num_states

    @property
    def num_materialized(self) -> int:
        """States created so far — for an eager DFA, all of them (the
        :class:`~repro.automata.backend.AutomatonBackend` view)."""
        return self.num_states

    def table_bytes(self, expanded: bool = False) -> int:
        """Transition-table memory footprint in bytes.

        With ``expanded=True`` this reports the paper's layout (256 symbols
        × 4 bytes = 1 KB per state) rather than the class-compressed one.
        """
        width = 256 if expanded else self.num_classes
        return self.num_states * width * 4

    def trap_states(self) -> np.ndarray:
        """Non-accepting states with only self-loops (explicit fail sinks)."""
        self_loop = (self.table == np.arange(self.num_states)[:, None]).all(axis=1)
        return np.nonzero(self_loop & ~self.accept)[0]

    @property
    def partial_size(self) -> int:
        """State count under the *partial automaton* convention.

        The paper's matcher (regen) represents the fail sink implicitly, so
        its reported ``|D|`` excludes it — e.g. ``r_5`` is 10 there and 11
        here.  This property reproduces that count.  The worked example of
        Figs. 1–2 uses the complete convention (``|D1| = 3`` including the
        sink), which is plain ``size``.
        """
        return self.num_states - len(self.trap_states())

    # -- execution ------------------------------------------------------
    def step(self, state: int, cls: int) -> int:
        return int(self.table[state, cls])

    def run_classes(self, classes: Iterable[int], start: Optional[int] = None) -> int:
        """Paper Algorithm 2: sequential table-lookup run."""
        q = self.initial if start is None else start
        table = self.table
        for c in classes:
            q = table[q, c]
        return int(q)

    def accepts_classes(self, classes: Iterable[int]) -> bool:
        return bool(self.accept[self.run_classes(classes)])

    def accepts(self, data: bytes) -> bool:
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))

    def stride_table(self, stride: int, max_table_bytes: Optional[int] = None):
        """Budget-capped ``stride``-gram precomposition of the table.

        Returns a :class:`~repro.automata.stride.StrideTable` (memoized on
        this DFA) or ``None`` when ``|D|·k^stride`` entries exceed the
        table-byte budget — callers fall back to the 1-gram table.
        """
        from repro.automata.stride import cached_stride_table

        return cached_stride_table(self, stride, max_table_bytes)

    # -- views ------------------------------------------------------------
    def byte_table(self) -> np.ndarray:
        """Expand to a full 256-wide byte-symbol table (paper layout)."""
        if self.partition is None:
            raise AutomatonError("no partition; alphabet is symbolic")
        return np.ascontiguousarray(self.table[:, self.partition.classmap])

    def letter_transformations(self) -> np.ndarray:
        """Per-class state transformations, shape ``(num_classes, n)``.

        Column view of the table: ``out[c]`` is the transformation
        ``q ↦ δ(q, c)`` — the generators of the transition monoid, i.e. the
        immediate successors of the SFA identity state.
        """
        return np.ascontiguousarray(self.table.T)

    def reachable_mask(self) -> np.ndarray:
        """Boolean array marking states reachable from the initial state."""
        n = self.num_states
        seen = np.zeros(n, dtype=bool)
        seen[self.initial] = True
        frontier = np.array([self.initial], dtype=np.int64)
        while frontier.size:
            nxt = np.unique(self.table[frontier].ravel())
            fresh = nxt[~seen[nxt]]
            seen[fresh] = True
            frontier = fresh
        return seen

    def __repr__(self) -> str:
        return (
            f"DFA(states={self.num_states}, classes={self.num_classes}, "
            f"accepting={int(self.accept.sum())})"
        )


# ---------------------------------------------------------------------------
# Subset construction (paper Algorithm 1)
# ---------------------------------------------------------------------------


def subset_construction(nfa: NFA, max_states: Optional[int] = None) -> DFA:
    """Determinize ``nfa`` (Rabin–Scott; paper Algorithm 1).

    Only accessible subsets are materialized.  ``max_states`` bounds the
    worst-case ``2^n`` blow-up; exceeding it raises
    :class:`~repro.errors.StateExplosionError`.
    """
    k = nfa.num_classes
    index: Dict[int, int] = {nfa.initial: 0}
    subsets: List[int] = [nfa.initial]
    rows: List[List[int]] = []
    i = 0
    while i < len(subsets):
        s = subsets[i]
        row = [0] * k
        for c in range(k):
            nxt = 0
            for q in iter_bits(s):
                nxt |= nfa.trans[q][c]
            if nxt not in index:
                if max_states is not None and len(subsets) >= max_states:
                    raise StateExplosionError(
                        "subset construction exceeded state budget",
                        max_states,
                        len(subsets) + 1,
                    )
                index[nxt] = len(subsets)
                subsets.append(nxt)
            row[c] = index[nxt]
        rows.append(row)
        i += 1
    table = np.array(rows, dtype=np.int32)
    accept = np.array([(s & nfa.final) != 0 for s in subsets], dtype=bool)
    return DFA(table, 0, accept, nfa.partition, subset_of=subsets)


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------


def trim(dfa: DFA) -> DFA:
    """Restrict to states reachable from the initial state."""
    mask = dfa.reachable_mask()
    if mask.all():
        return dfa
    old_ids = np.nonzero(mask)[0]
    remap = -np.ones(dfa.num_states, dtype=np.int32)
    remap[old_ids] = np.arange(old_ids.size, dtype=np.int32)
    table = remap[dfa.table[old_ids]]
    accept = dfa.accept[old_ids]
    subset_of = (
        [dfa.subset_of[i] for i in old_ids] if dfa.subset_of is not None else None
    )
    return DFA(table, int(remap[dfa.initial]), accept, dfa.partition, subset_of)


def moore_partition(dfa: DFA) -> np.ndarray:
    """Moore refinement: return the block id of every state.

    Vectorized: each round builds per-state signatures
    ``(block, block[δ(q,0)], …, block[δ(q,k-1)])`` and re-numbers them with
    ``np.unique`` until a fixpoint — ``O(rounds · n·k·log n)`` with tiny
    constants, which beats pointer-chasing Hopcroft in NumPy.
    """
    labels = dfa.accept.astype(np.int64)
    while True:
        sig = np.column_stack(
            [labels] + [labels[dfa.table[:, c]] for c in range(dfa.num_classes)]
        )
        _, new_labels = np.unique(sig, axis=0, return_inverse=True)
        new_labels = new_labels.reshape(-1)
        if np.array_equal(new_labels, labels):
            return labels
        labels = new_labels


def hopcroft_partition(dfa: DFA) -> np.ndarray:
    """Hopcroft's ``O(n·k·log n)`` partition refinement (cross-check)."""
    n, k = dfa.table.shape
    inv: List[List[List[int]]] = [
        [[] for _ in range(n)] for _ in range(k)
    ]  # inv[c][t] = sources mapping to t on c
    for q in range(n):
        for c in range(k):
            inv[c][int(dfa.table[q, c])].append(q)

    block_of = np.zeros(n, dtype=np.int64)
    accepting = set(np.nonzero(dfa.accept)[0].tolist())
    rejecting = set(np.nonzero(~dfa.accept)[0].tolist())
    blocks: List[set] = []
    for s in (accepting, rejecting):
        if s:
            for q in s:
                block_of[q] = len(blocks)
            blocks.append(set(s))
    worklist = {(b, c) for b in range(len(blocks)) for c in range(k)}
    while worklist:
        b, c = worklist.pop()
        # states with a c-transition into block b
        x = set()
        for t in blocks[b]:
            x.update(inv[c][t])
        if not x:
            continue
        for bi in range(len(blocks)):
            blk = blocks[bi]
            inter = blk & x
            if not inter or len(inter) == len(blk):
                continue
            diff = blk - inter
            small, large = (inter, diff) if len(inter) <= len(diff) else (diff, inter)
            blocks[bi] = large
            new_id = len(blocks)
            blocks.append(small)
            for q in small:
                block_of[q] = new_id
            # ``small`` is the lighter half, so adding it keeps the
            # classic "smaller half" bound whether or not (bi, cc) is queued.
            for cc in range(k):
                worklist.add((new_id, cc))
    # renumber stably by first occurrence
    order: Dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    for q in range(n):
        bid = int(block_of[q])
        if bid not in order:
            order[bid] = len(order)
        out[q] = order[bid]
    return out


def _quotient(dfa: DFA, labels: np.ndarray) -> DFA:
    """Collapse states with equal labels into one state each."""
    num_blocks = int(labels.max()) + 1 if labels.size else 0
    rep = np.zeros(num_blocks, dtype=np.int64)
    seen = np.zeros(num_blocks, dtype=bool)
    for q in range(dfa.num_states):
        b = int(labels[q])
        if not seen[b]:
            seen[b] = True
            rep[b] = q
    table = labels[dfa.table[rep]].astype(np.int32)
    accept = dfa.accept[rep]
    return DFA(table, int(labels[dfa.initial]), accept, dfa.partition)


def minimize(dfa: DFA, method: str = "moore") -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    Reachability-trims first, then merges Myhill–Nerode-equivalent states
    using ``method`` ∈ {"moore", "hopcroft"}.
    """
    dfa = trim(dfa)
    if method == "moore":
        labels = moore_partition(dfa)
    elif method == "hopcroft":
        labels = hopcroft_partition(dfa)
    else:
        raise ValueError(f"unknown minimization method {method!r}")
    return _quotient(dfa, labels)


def dfa_from_transformations(
    generators: np.ndarray,
    initial: int,
    accept: Iterable[int],
    partition: Optional[ByteClassPartition] = None,
) -> DFA:
    """Build a DFA directly from per-letter transformations.

    ``generators`` has shape ``(k, n)``; ``generators[c][q]`` = ``δ(q, c)``.
    Used by the theory witness families (Sect. VII) where the language is
    defined by its transition monoid rather than by a readable regex.
    """
    generators = np.asarray(generators, dtype=np.int32)
    k, n = generators.shape
    table = np.ascontiguousarray(generators.T)
    acc = np.zeros(n, dtype=bool)
    for q in accept:
        acc[q] = True
    return DFA(table, initial, acc, partition)
