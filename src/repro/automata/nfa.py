"""Nondeterministic finite automata over a class-compressed byte alphabet.

State sets are represented as int bitmasks (see :mod:`repro.util.bitset`),
which makes subset construction and the extended transition function cheap.

Two regex→NFA constructions are provided:

* :func:`glushkov_nfa` — the McNaughton–Yamada *position automaton* used by
  the paper's matcher (one state per literal position + a start state, no
  epsilon transitions);
* :func:`thompson_nfa` — the classic Thompson construction with epsilon
  transitions, plus :func:`remove_epsilon`; kept as an ablation/cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import AutomatonError
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Never,
    Node,
    Star,
    expand_repeats,
)
from repro.regex.charclass import ByteClassPartition, CharSet
from repro.util.bitset import bits_of, iter_bits


@dataclass
class NFA:
    """An NFA ``(Q, Σ, δ, I, F)`` with ``Σ`` = byte classes.

    Attributes
    ----------
    num_states:
        ``|Q|``; states are ``0..num_states-1``.
    num_classes:
        alphabet size after byte-class compression.
    trans:
        ``trans[q][c]`` is the successor set ``δ(q, c)`` as an int bitmask.
    initial:
        bitmask of initial states ``I``.
    final:
        bitmask of final states ``F``.
    partition:
        the byte-class partition, or ``None`` for raw symbolic alphabets
        (used by the theory witness families).
    """

    num_states: int
    num_classes: int
    trans: List[List[int]]
    initial: int
    final: int
    partition: Optional[ByteClassPartition] = None

    def __post_init__(self) -> None:
        if len(self.trans) != self.num_states:
            raise AutomatonError("trans length != num_states")
        for row in self.trans:
            if len(row) != self.num_classes:
                raise AutomatonError("trans row width != num_classes")

    # -- core semantics --------------------------------------------------
    def step_set(self, mask: int, cls: int) -> int:
        """Extended transition of a state set on one symbol class."""
        out = 0
        for q in iter_bits(mask):
            out |= self.trans[q][cls]
        return out

    def run_classes(self, classes: Iterable[int]) -> int:
        """Run over a class-index sequence; return the final state set."""
        mask = self.initial
        for c in classes:
            mask = self.step_set(mask, int(c))
            if mask == 0:
                return 0
        return mask

    def accepts_classes(self, classes: Iterable[int]) -> bool:
        """Membership test on a class-index sequence."""
        return (self.run_classes(classes) & self.final) != 0

    def accepts(self, data: bytes) -> bool:
        """Membership test on raw bytes (requires a partition)."""
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))

    # -- derived views -----------------------------------------------------
    def class_matrices(self) -> np.ndarray:
        """Boolean transition matrices, shape ``(num_classes, n, n)``.

        ``M[c, q, r]`` is true iff ``r ∈ δ(q, c)``.  These are the boolean
        matrices whose generated semigroup Sect. VII relates to N-SFA size.
        """
        n = self.num_states
        mats = np.zeros((self.num_classes, n, n), dtype=bool)
        for q in range(n):
            for c in range(self.num_classes):
                for r in iter_bits(self.trans[q][c]):
                    mats[c, q, r] = True
        return mats

    def reverse(self) -> "NFA":
        """The reversal automaton (accepts the mirror language)."""
        n = self.num_states
        trans = [[0] * self.num_classes for _ in range(n)]
        for q in range(n):
            for c in range(self.num_classes):
                for r in iter_bits(self.trans[q][c]):
                    trans[r][c] |= 1 << q
        return NFA(n, self.num_classes, trans, self.final, self.initial, self.partition)

    def num_transitions(self) -> int:
        """Total number of (q, c, r) transition triples."""
        return sum(m.bit_count() for row in self.trans for m in row)

    @property
    def size(self) -> int:
        """``|N|`` — the number of states (the paper's automaton size)."""
        return self.num_states

    def __repr__(self) -> str:
        return (
            f"NFA(states={self.num_states}, classes={self.num_classes}, "
            f"transitions={self.num_transitions()})"
        )


# ---------------------------------------------------------------------------
# Glushkov / McNaughton–Yamada position construction
# ---------------------------------------------------------------------------


class _Glushkov:
    """Computes nullable/first/last/follow over an expanded AST."""

    def __init__(self) -> None:
        self.pos_charsets: List[CharSet] = []
        self.follow: Dict[int, Set[int]] = {}

    def analyze(self, node: Node) -> Tuple[bool, Set[int], Set[int]]:
        if isinstance(node, Empty):
            return True, set(), set()
        if isinstance(node, Never):
            return False, set(), set()
        if isinstance(node, Literal):
            idx = len(self.pos_charsets)
            self.pos_charsets.append(node.charset)
            self.follow[idx] = set()
            return False, {idx}, {idx}
        if isinstance(node, Concat):
            nullable, first, last = True, set(), set()
            for child in node.children:
                c_null, c_first, c_last = self.analyze(child)
                for p in last:
                    self.follow[p] |= c_first
                if nullable:
                    first |= c_first
                if c_null:
                    last |= c_last
                else:
                    last = c_last
                nullable = nullable and c_null
            return nullable, first, last
        if isinstance(node, Alternation):
            nullable, first, last = False, set(), set()
            for child in node.children:
                c_null, c_first, c_last = self.analyze(child)
                nullable = nullable or c_null
                first |= c_first
                last |= c_last
            return nullable, first, last
        if isinstance(node, Star):
            _, c_first, c_last = self.analyze(node.child)
            for p in c_last:
                self.follow[p] |= c_first
            return True, c_first, c_last
        raise AutomatonError(f"unexpanded node in Glushkov construction: {node!r}")


def glushkov_nfa(
    node: Node, partition: Optional[ByteClassPartition] = None
) -> NFA:
    """Build the position automaton of ``node`` (McNaughton–Yamada).

    State 0 is the unique start state; states ``1..m`` correspond to the
    ``m`` literal positions of the (repeat-expanded) expression.  The
    automaton has no epsilon transitions by construction.
    """
    node = expand_repeats(node)
    if partition is None:
        partition = ByteClassPartition(list(node.charsets()))
    g = _Glushkov()
    nullable, first, last = g.analyze(node)
    m = len(g.pos_charsets)
    num_classes = partition.num_classes
    trans = [[0] * num_classes for _ in range(m + 1)]

    cls_cache: Dict[CharSet, List[int]] = {}

    def classes_for(cs: CharSet) -> List[int]:
        if cs not in cls_cache:
            cls_cache[cs] = partition.classes_of(cs)
        return cls_cache[cs]

    for p in first:
        for c in classes_for(g.pos_charsets[p]):
            trans[0][c] |= 1 << (p + 1)
    for p, followers in g.follow.items():
        for q in followers:
            for c in classes_for(g.pos_charsets[q]):
                trans[p + 1][c] |= 1 << (q + 1)

    final = sum(1 << (p + 1) for p in last)
    if nullable:
        final |= 1
    return NFA(m + 1, num_classes, trans, initial=1, final=final, partition=partition)


# ---------------------------------------------------------------------------
# Thompson construction (with epsilon) + epsilon elimination
# ---------------------------------------------------------------------------


@dataclass
class EpsilonNFA:
    """Thompson-style NFA with explicit epsilon edges (ablation path)."""

    num_states: int
    num_classes: int
    trans: List[List[int]]
    eps: List[int] = field(default_factory=list)
    initial: int = 0
    final: int = 0
    partition: Optional[ByteClassPartition] = None

    def epsilon_closure(self, mask: int) -> int:
        """Reflexive-transitive closure of ``mask`` under epsilon edges."""
        seen = mask
        frontier = mask
        while frontier:
            nxt = 0
            for q in iter_bits(frontier):
                nxt |= self.eps[q]
            frontier = nxt & ~seen
            seen |= frontier
        return seen


class _ThompsonBuilder:
    def __init__(self, partition: ByteClassPartition):
        self.partition = partition
        self.trans: List[List[int]] = []
        self.eps: List[int] = []

    def new_state(self) -> int:
        self.trans.append([0] * self.partition.num_classes)
        self.eps.append(0)
        return len(self.trans) - 1

    def build(self, node: Node) -> Tuple[int, int]:
        """Return (entry, exit) state pair for the fragment."""
        if isinstance(node, Empty):
            s, t = self.new_state(), self.new_state()
            self.eps[s] |= 1 << t
            return s, t
        if isinstance(node, Never):
            return self.new_state(), self.new_state()
        if isinstance(node, Literal):
            s, t = self.new_state(), self.new_state()
            for c in self.partition.classes_of(node.charset):
                self.trans[s][c] |= 1 << t
            return s, t
        if isinstance(node, Concat):
            if not node.children:
                return self.build(Empty())
            entry, cur = self.build(node.children[0])
            for child in node.children[1:]:
                nxt_in, nxt_out = self.build(child)
                self.eps[cur] |= 1 << nxt_in
                cur = nxt_out
            return entry, cur
        if isinstance(node, Alternation):
            s, t = self.new_state(), self.new_state()
            for child in node.children:
                ci, co = self.build(child)
                self.eps[s] |= 1 << ci
                self.eps[co] |= 1 << t
            return s, t
        if isinstance(node, Star):
            s, t = self.new_state(), self.new_state()
            ci, co = self.build(node.child)
            self.eps[s] |= (1 << ci) | (1 << t)
            self.eps[co] |= (1 << ci) | (1 << t)
            return s, t
        raise AutomatonError(f"unexpanded node in Thompson construction: {node!r}")


def thompson_epsilon_nfa(
    node: Node, partition: Optional[ByteClassPartition] = None
) -> EpsilonNFA:
    """Thompson construction; returns an automaton with epsilon edges."""
    node = expand_repeats(node)
    if partition is None:
        partition = ByteClassPartition(list(node.charsets()))
    b = _ThompsonBuilder(partition)
    entry, exit_ = b.build(node)
    return EpsilonNFA(
        num_states=len(b.trans),
        num_classes=partition.num_classes,
        trans=b.trans,
        eps=b.eps,
        initial=1 << entry,
        final=1 << exit_,
        partition=partition,
    )


def remove_epsilon(enfa: EpsilonNFA) -> NFA:
    """Eliminate epsilon edges (closure-based) and trim unreachable states."""
    n = enfa.num_states
    closures = [enfa.epsilon_closure(1 << q) for q in range(n)]
    trans = [[0] * enfa.num_classes for _ in range(n)]
    final = 0
    for q in range(n):
        cq = closures[q]
        for c in range(enfa.num_classes):
            out = 0
            for r in iter_bits(cq):
                out |= enfa.trans[r][c]
            # successors are taken up to closure as well
            closed = 0
            for r in iter_bits(out):
                closed |= closures[r]
            trans[q][c] = closed
        if cq & enfa.final:
            final |= 1 << q
    initial = 0
    for q in iter_bits(enfa.initial):
        initial |= closures[q]
    nfa = NFA(n, enfa.num_classes, trans, initial, final, enfa.partition)
    return trim_nfa(nfa)


def trim_nfa(nfa: NFA) -> NFA:
    """Drop states unreachable from the initial set (renumbering)."""
    reach = nfa.initial
    frontier = nfa.initial
    while frontier:
        nxt = 0
        for q in iter_bits(frontier):
            for c in range(nfa.num_classes):
                nxt |= nfa.trans[q][c]
        frontier = nxt & ~reach
        reach |= frontier
    keep = bits_of(reach)
    remap = {old: new for new, old in enumerate(keep)}

    def remask(mask: int) -> int:
        out = 0
        for q in iter_bits(mask):
            if q in remap:
                out |= 1 << remap[q]
        return out

    trans = [
        [remask(nfa.trans[old][c]) for c in range(nfa.num_classes)] for old in keep
    ]
    return NFA(
        len(keep),
        nfa.num_classes,
        trans,
        remask(nfa.initial),
        remask(nfa.final),
        nfa.partition,
    )


def thompson_nfa(node: Node, partition: Optional[ByteClassPartition] = None) -> NFA:
    """Thompson construction followed by epsilon elimination."""
    return remove_epsilon(thompson_epsilon_nfa(node, partition))


def nfa_from_transitions(
    num_states: int,
    num_classes: int,
    edges: Sequence[Tuple[int, int, int]],
    initial: Iterable[int],
    final: Iterable[int],
    partition: Optional[ByteClassPartition] = None,
) -> NFA:
    """Convenience builder from explicit ``(src, cls, dst)`` edges."""
    trans = [[0] * num_classes for _ in range(num_states)]
    for src, cls, dst in edges:
        trans[src][cls] |= 1 << dst
    init = 0
    for q in initial:
        init |= 1 << q
    fin = 0
    for q in final:
        fin |= 1 << q
    return NFA(num_states, num_classes, trans, init, fin, partition)
