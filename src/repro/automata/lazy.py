"""On-the-fly (lazy) DFA and SFA construction (paper Sect. V-A).

Instead of materializing the full automaton before matching, states are
created the first time a transition needs them.  After reading a text of
length ``n`` at most ``n+1`` states exist, even when the full construction
would explode — the standard technique the paper points to (Cox's RE2 notes)
and notes "we can easily apply ... because the correspondence construction
is a natural extension of the subset construction".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import AutomatonError
from repro.util.bitset import iter_bits


class LazyDFA:
    """Subset-construction DFA materialized on demand.

    The transition table is an ``int32`` array grown geometrically; missing
    entries are ``-1`` and get filled by one subset step on first use.
    """

    def __init__(self, nfa: NFA):
        self.nfa = nfa
        self.partition = nfa.partition
        self._index: Dict[int, int] = {nfa.initial: 0}
        self._subsets: List[int] = [nfa.initial]
        self._table = -np.ones((16, nfa.num_classes), dtype=np.int32)
        self._accept: List[bool] = [(nfa.initial & nfa.final) != 0]
        self.initial = 0

    @property
    def num_materialized(self) -> int:
        """Number of DFA states created so far."""
        return len(self._subsets)

    def _grow(self) -> None:
        new = -np.ones((self._table.shape[0] * 2, self.nfa.num_classes), dtype=np.int32)
        new[: self._table.shape[0]] = self._table
        self._table = new

    def step(self, state: int, cls: int) -> int:
        nxt = int(self._table[state, cls])
        if nxt >= 0:
            return nxt
        mask = 0
        for q in iter_bits(self._subsets[state]):
            mask |= self.nfa.trans[q][cls]
        idx = self._index.get(mask)
        if idx is None:
            idx = len(self._subsets)
            self._index[mask] = idx
            self._subsets.append(mask)
            self._accept.append((mask & self.nfa.final) != 0)
            if idx >= self._table.shape[0]:
                self._grow()
        self._table[state, cls] = idx
        return idx

    def run_classes(self, classes: Iterable[int], start: Optional[int] = None) -> int:
        q = self.initial if start is None else start
        for c in classes:
            q = self.step(q, int(c))
        return q

    def accepts_classes(self, classes: Iterable[int]) -> bool:
        return self._accept[self.run_classes(classes)]

    def accepts(self, data: bytes) -> bool:
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))


class LazySFA:
    """Correspondence-construction D-SFA materialized on demand.

    Mirrors :class:`LazyDFA`: SFA states (transformations of the DFA's
    state set) are interned by their byte signature when first reached.
    """

    def __init__(self, dfa: DFA):
        self.dfa = dfa
        self.partition = dfa.partition
        n = dfa.num_states
        self._columns = [np.ascontiguousarray(dfa.table[:, c]) for c in range(dfa.num_classes)]
        identity = np.arange(n, dtype=np.int32)
        self._index: Dict[bytes, int] = {identity.tobytes(): 0}
        self._maps: List[np.ndarray] = [identity]
        self._table = -np.ones((16, dfa.num_classes), dtype=np.int32)
        self.initial = 0

    @property
    def num_materialized(self) -> int:
        """Number of SFA states created so far."""
        return len(self._maps)

    def _grow(self) -> None:
        new = -np.ones((self._table.shape[0] * 2, self.dfa.num_classes), dtype=np.int32)
        new[: self._table.shape[0]] = self._table
        self._table = new

    def step(self, state: int, cls: int) -> int:
        nxt = int(self._table[state, cls])
        if nxt >= 0:
            return nxt
        fnext = self._columns[cls][self._maps[state]]
        key = fnext.tobytes()
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._maps)
            self._index[key] = idx
            self._maps.append(np.ascontiguousarray(fnext))
            if idx >= self._table.shape[0]:
                self._grow()
        self._table[state, cls] = idx
        return idx

    def mapping_row(self, idx: int) -> np.ndarray:
        return self._maps[idx]

    def run_classes(self, classes: Iterable[int], start: Optional[int] = None) -> int:
        f = self.initial if start is None else start
        for c in classes:
            f = self.step(f, int(c))
        return f

    def accepts_classes(self, classes: Iterable[int]) -> bool:
        f = self.run_classes(classes)
        return bool(self.dfa.accept[self._maps[f][self.dfa.initial]])

    def accepts(self, data: bytes) -> bool:
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))

    def run_chunks(self, chunks: List[np.ndarray]) -> bool:
        """Algorithm 5 on a lazy SFA: per-chunk scans + sequential reduction."""
        finals = [self.run_classes(ch) for ch in chunks]
        q = self.dfa.initial
        for f in finals:
            q = int(self._maps[f][q])
        return bool(self.dfa.accept[q])
