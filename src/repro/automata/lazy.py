"""On-the-fly (lazy) DFA and SFA construction (paper Sect. V-A).

Instead of materializing the full automaton before matching, states are
created the first time a transition needs them.  After reading a text of
length ``n`` at most ``n+1`` states exist, even when the full construction
would explode — the standard technique the paper points to (Cox's RE2 notes)
and notes "we can easily apply ... because the correspondence construction
is a natural extension of the subset construction".

All three lazy automata here implement the
:class:`~repro.automata.backend.AutomatonBackend` protocol and share one
runtime shape:

* interning dicts guarded by an ``RLock`` (scans may run on thread pools);
* a *scaled flat-list* transition cache — one Python list whose entries
  are ``next_state * num_classes`` so the hot loop is a single
  ``f = flat[f + c]`` with ``-1`` holes falling back to a fill step
  (the same layout :func:`repro.parallel.scan.sfa_scan` uses);
* a ``max_states`` budget converting runaway materialization into
  :class:`~repro.errors.StateExplosionError` instead of an OOM;
* ``freeze()`` — complete the closure of the materialized states and
  return the equivalent *eager* automaton, so stride/vector kernels and
  shared-memory publication apply after a lazy warm-up.

:class:`LazyUnionDFA` is the multi-pattern workhorse: the union subset
state is stored *sparsely* as the tuple of per-rule states that are away
from their per-rule "rest" state, so one transition miss costs
``O(active rules + rules excitable by the symbol)`` instead of
``O(total rules)`` — the property that makes 10³-rule rulesets scan at
toy-ruleset speed.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.automata.backend import DEFAULT_LAZY_STATE_BUDGET
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.sfa import SFA
from repro.errors import AutomatonError, StateExplosionError
from repro.regex.charclass import ByteClassPartition
from repro.util.bitset import iter_bits


def _as_int_list(classes) -> list:
    """A plain-int view of a class sequence (fast to iterate in the hot
    loop; numpy scalars cost an unboxing per symbol otherwise)."""
    if isinstance(classes, np.ndarray):
        return classes.tolist()
    if isinstance(classes, (bytes, bytearray, memoryview)):
        return list(classes)
    return [int(c) for c in classes]


class LazyDFA:
    """Subset-construction DFA materialized on demand.

    ``max_states`` bounds materialization (an OOM backstop, not a
    feasibility bound — a scan of ``n`` symbols touches ≤ ``n+1`` states);
    interning is thread-safe so a warmed instance may be shared across a
    thread pool.
    """

    lazy_backend = True

    def __init__(self, nfa: NFA, max_states: int = DEFAULT_LAZY_STATE_BUDGET):
        self.nfa = nfa
        self.partition = nfa.partition
        self.max_states = max_states
        self.initial = 0
        self._k = nfa.num_classes
        self._lock = threading.RLock()
        self._index: Dict[int, int] = {nfa.initial: 0}
        self._subsets: List[int] = [nfa.initial]
        self._accept: List[bool] = [(nfa.initial & nfa.final) != 0]
        # Scaled flat transition cache: _flat[q*k + c] == next*k, -1 = hole.
        self._flat: List[int] = [-1] * self._k

    @property
    def num_classes(self) -> int:
        return self._k

    @property
    def num_materialized(self) -> int:
        """Number of DFA states created so far."""
        return len(self._subsets)

    def _fill(self, state: int, cls: int, budget: Optional[int] = None) -> int:
        """Materialize one transition; returns the *scaled* target."""
        k = self._k
        with self._lock:
            nxt = self._flat[state * k + cls]
            if nxt >= 0:  # another thread filled it while we waited
                return nxt
            mask = 0
            trans = self.nfa.trans
            for q in iter_bits(self._subsets[state]):
                mask |= trans[q][cls]
            idx = self._index.get(mask)
            if idx is None:
                limit = self.max_states if budget is None else budget
                if len(self._subsets) >= limit:
                    raise StateExplosionError(
                        "lazy determinization exceeded state budget",
                        limit,
                        len(self._subsets) + 1,
                    )
                idx = len(self._subsets)
                self._subsets.append(mask)
                self._accept.append((mask & self.nfa.final) != 0)
                self._flat.extend([-1] * k)
                self._index[mask] = idx
            self._flat[state * k + cls] = idx * k
            return idx * k

    def step(self, state: int, cls: int) -> int:
        nxt = self._flat[state * self._k + cls]
        if nxt < 0:
            nxt = self._fill(state, cls)
        return nxt // self._k

    def run_classes(self, classes: Iterable[int], start: Optional[int] = None) -> int:
        k = self._k
        flat = self._flat
        f = (self.initial if start is None else start) * k
        for c in _as_int_list(classes):
            nf = flat[f + c]
            if nf < 0:
                nf = self._fill(f // k, c)
            f = nf
        return f // k

    def accepts_classes(self, classes: Iterable[int]) -> bool:
        return self._accept[self.run_classes(classes)]

    def accepts(self, data: bytes) -> bool:
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))

    def freeze(self, max_states: Optional[int] = None) -> DFA:
        """Complete the closure of the materialized states and return the
        equivalent eager :class:`~repro.automata.dfa.DFA`.

        Filling the remaining holes may materialize new states; the walk
        is budgeted (``max_states``, default this automaton's own budget)
        and raises :class:`~repro.errors.StateExplosionError` when the
        language genuinely needs more.  On a freshly built instance this
        *is* subset construction, in the same BFS order.
        """
        k = self._k
        with self._lock:
            i = 0
            while i < len(self._subsets):
                base = i * k
                for c in range(k):
                    if self._flat[base + c] < 0:
                        self._fill(i, c, budget=max_states)
                i += 1
            n = len(self._subsets)
            table = np.array(self._flat[: n * k], dtype=np.int32).reshape(n, k) // k
            accept = np.array(self._accept, dtype=bool)
            return DFA(
                table, self.initial, accept, self.partition,
                subset_of=list(self._subsets),
            )


class LazySFA:
    """Correspondence-construction D-SFA materialized on demand.

    Mirrors :class:`LazyDFA`: SFA states (transformations of the DFA's
    state set) are interned by their byte signature when first reached.
    """

    lazy_backend = True

    def __init__(self, dfa: DFA, max_states: int = DEFAULT_LAZY_STATE_BUDGET):
        self.dfa = dfa
        self.partition = dfa.partition
        self.max_states = max_states
        self.initial = 0
        self._k = dfa.num_classes
        self._lock = threading.RLock()
        self._columns = [
            np.ascontiguousarray(dfa.table[:, c]) for c in range(dfa.num_classes)
        ]
        identity = np.arange(dfa.num_states, dtype=np.int32)
        self._index: Dict[bytes, int] = {identity.tobytes(): 0}
        self._maps: List[np.ndarray] = [identity]
        self._flat: List[int] = [-1] * self._k

    @property
    def num_classes(self) -> int:
        return self._k

    @property
    def num_materialized(self) -> int:
        """Number of SFA states created so far."""
        return len(self._maps)

    def _fill(self, state: int, cls: int, budget: Optional[int] = None) -> int:
        k = self._k
        with self._lock:
            nxt = self._flat[state * k + cls]
            if nxt >= 0:
                return nxt
            fnext = self._columns[cls][self._maps[state]]
            key = fnext.tobytes()
            idx = self._index.get(key)
            if idx is None:
                limit = self.max_states if budget is None else budget
                if len(self._maps) >= limit:
                    raise StateExplosionError(
                        "lazy correspondence construction exceeded state budget",
                        limit,
                        len(self._maps) + 1,
                    )
                idx = len(self._maps)
                self._maps.append(np.ascontiguousarray(fnext))
                self._flat.extend([-1] * k)
                self._index[key] = idx
            self._flat[state * k + cls] = idx * k
            return idx * k

    def step(self, state: int, cls: int) -> int:
        nxt = self._flat[state * self._k + cls]
        if nxt < 0:
            nxt = self._fill(state, cls)
        return nxt // self._k

    def mapping_row(self, idx: int) -> np.ndarray:
        return self._maps[idx]

    def run_classes(self, classes: Iterable[int], start: Optional[int] = None) -> int:
        k = self._k
        flat = self._flat
        f = (self.initial if start is None else start) * k
        for c in _as_int_list(classes):
            nf = flat[f + c]
            if nf < 0:
                nf = self._fill(f // k, c)
            f = nf
        return f // k

    def accepts_classes(self, classes: Iterable[int]) -> bool:
        f = self.run_classes(classes)
        return bool(self.dfa.accept[self._maps[f][self.dfa.initial]])

    def accepts(self, data: bytes) -> bool:
        if self.partition is None:
            raise AutomatonError("byte input needs a ByteClassPartition")
        return self.accepts_classes(self.partition.translate(data))

    def run_chunks(self, chunks: List[np.ndarray]) -> bool:
        """Algorithm 5 on a lazy SFA: per-chunk scans + sequential reduction."""
        finals = [self.run_classes(ch) for ch in chunks]
        q = self.dfa.initial
        for f in finals:
            q = int(self._maps[f][q])
        return bool(self.dfa.accept[q])

    def freeze(self, max_states: Optional[int] = None) -> SFA:
        """Complete the closure and return the equivalent eager D-SFA."""
        k = self._k
        with self._lock:
            i = 0
            while i < len(self._maps):
                base = i * k
                for c in range(k):
                    if self._flat[base + c] < 0:
                        self._fill(i, c, budget=max_states)
                i += 1
            n = len(self._maps)
            table = np.array(self._flat[: n * k], dtype=np.int32).reshape(n, k) // k
            maps_arr = np.stack(self._maps).astype(np.int32)
            accept = self.dfa.accept[maps_arr[:, self.dfa.initial]]
            return SFA(
                table=table,
                initial=self.initial,
                accept=np.ascontiguousarray(accept),
                maps=maps_arr,
                kind="D-SFA",
                origin_initial=self.dfa.initial,
                origin_final=self.dfa.accept.copy(),
                partition=self.partition,
            )


# ---------------------------------------------------------------------------
# Lazy union determinization (multi-pattern backend)
# ---------------------------------------------------------------------------


class LazyUnionDFA:
    """Lazy subset construction over the disjoint union of rule NFAs.

    Semantically identical to
    :func:`repro.matching.multi._union_subset_construction` — a union
    state is the product of per-rule subset states — but materialized on
    demand *and stored sparsely*: only rules whose per-rule state differs
    from their **rest state** appear in the state key.

    The rest state is what makes per-symbol cost independent of the rule
    count.  In ``"search"`` mode every rule is wrapped as ``Σ*·L·Σ*``, so
    after any non-matching symbol a rule falls back to a background
    subset ``B_r`` (the leading ``Σ*`` position, possibly plus first
    positions that match *every* class) with ``δ_r(B_r, c) = δ_r(I_r, c)``
    for all ``c``.  Both facts are *verified* per rule at construction —
    rules where the background equivalence does not hold simply stay in
    the active set forever (sound, merely less sparse).  In
    ``"fullmatch"`` mode the rest state is the dead subset ``∅``, which
    rules enter once they can no longer match and never leave.

    One transition miss then costs ``O(|active| + |excitable(c)|)`` where
    ``excitable(c)`` are the rules whose rest state reacts to class ``c``
    — for IDS-style literal-anchored rules a small fraction of the
    ruleset per symbol class.

    ``rule_sets`` is a live, growing list: ``rule_sets[q]`` is the sorted
    tuple of rule indices matched in union state ``q``, for exactly the
    states materialized so far (every state index an engine can hold is
    materialized by definition).
    """

    lazy_backend = True

    def __init__(
        self,
        nfas: List[NFA],
        partition: ByteClassPartition,
        mode: str = "search",
        max_states: int = DEFAULT_LAZY_STATE_BUDGET,
    ):
        if mode not in ("search", "fullmatch"):
            raise AutomatonError(f"unknown mode {mode!r}")
        self.partition = partition
        self.mode = mode
        self.max_states = max_states
        self.initial = 0
        self._k = partition.num_classes
        self._nfas = nfas
        self._lock = threading.RLock()

        n = len(nfas)
        # Per-rule state interning: masks <-> small local indices.
        self._ridx: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._rmasks: List[List[int]] = [[] for _ in range(n)]
        self._racc: List[List[bool]] = [[] for _ in range(n)]
        self._rmemo: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._rest: List[int] = [-1] * n  # local rest index, -1 = none
        # _excite[c]: rules whose rest state reacts to class c, with the
        # target local state and its acceptance, precomputed.
        self._excite: List[List[Tuple[int, int, bool]]] = [
            [] for _ in range(self._k)
        ]
        base: List[int] = []  # rules accepting at rest (match everywhere)

        init_pairs: List[Tuple[int, int]] = []
        for r, nfa in enumerate(nfas):
            i0 = self._intern_rule_state(r, nfa.initial)
            rest_mask = self._setup_rest(r, nfa)
            if rest_mask is None:
                init_pairs.append((r, i0))  # always active
                continue
            rest_idx = self._ridx[r][rest_mask]
            self._rest[r] = rest_idx
            if self._racc[r][rest_idx]:
                base.append(r)
            if mode == "fullmatch":
                init_pairs.append((r, i0))  # active until it dies

        self._base: Tuple[int, ...] = tuple(base)
        # Union state interning.
        self._index: Dict[Tuple[Tuple[int, int], ...], int] = {}
        self._states: List[Tuple[Tuple[int, int], ...]] = []
        self.rule_sets: List[Tuple[int, ...]] = []
        self.accept: List[bool] = []
        self._flat: List[int] = []
        hits = [
            r for r, q in init_pairs
            if self._racc[r][q] and r not in self._base
        ]
        self._intern_union_state(tuple(init_pairs), hits)

    # -- per-rule machinery ------------------------------------------------
    def _intern_rule_state(self, r: int, mask: int) -> int:
        idx = self._ridx[r].get(mask)
        if idx is None:
            idx = len(self._rmasks[r])
            self._ridx[r][mask] = idx
            self._rmasks[r].append(mask)
            self._racc[r].append((mask & self._nfas[r].final) != 0)
        return idx

    def _rule_mask_step(self, r: int, mask: int, cls: int) -> int:
        out = 0
        trans = self._nfas[r].trans
        for q in iter_bits(mask):
            out |= trans[q][cls]
        return out

    def _setup_rest(self, r: int, nfa: NFA) -> Optional[int]:
        """Find (and verify) rule ``r``'s rest subset; ``None`` = always
        active.  Also precomputes the excitement tables."""
        k = self._k
        if self.mode == "fullmatch":
            # Dead subset: entered when the rule can't match, never left.
            self._intern_rule_state(r, 0)
            return 0
        targets = [self._rule_mask_step(r, nfa.initial, c) for c in range(k)]
        rest = targets[0] if targets else 0
        for m in targets[1:]:
            rest &= m
        if rest == nfa.initial:
            return None  # degenerate (shouldn't happen for Glushkov NFAs)
        rest_acc = (rest & nfa.final) != 0
        init_acc = (nfa.initial & nfa.final) != 0
        if rest_acc != init_acc:
            return None
        for c in range(k):
            if self._rule_mask_step(r, rest, c) != targets[c]:
                return None  # background equivalence fails: stay active
        rest_idx = self._intern_rule_state(r, rest)
        i0 = self._ridx[r][nfa.initial]
        for c in range(k):
            tgt = self._intern_rule_state(r, targets[c])
            # I_r ≡ B_r (verified above): memoize both rows at once.
            self._rmemo[r][i0 * k + c] = tgt
            self._rmemo[r][rest_idx * k + c] = tgt
            if targets[c] != rest:
                self._excite[c].append((r, tgt, self._racc[r][tgt]))
        return rest

    def _rule_step(self, r: int, q: int, cls: int) -> int:
        key = q * self._k + cls
        nq = self._rmemo[r].get(key)
        if nq is None:
            mask = self._rule_mask_step(r, self._rmasks[r][q], cls)
            nq = self._intern_rule_state(r, mask)
            self._rmemo[r][key] = nq
        return nq

    # -- union machinery ---------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self._k

    @property
    def num_materialized(self) -> int:
        """Number of union states created so far."""
        return len(self._states)

    def _intern_union_state(
        self,
        key: Tuple[Tuple[int, int], ...],
        hits: List[int],
        budget: Optional[int] = None,
        message: str = "lazy union determinization exceeded state budget",
    ) -> int:
        limit = self.max_states if budget is None else budget
        if len(self._states) >= limit:
            raise StateExplosionError(message, limit, len(self._states) + 1)
        idx = len(self._states)
        self._states.append(key)
        if hits:
            ruleset = tuple(sorted(set(self._base).union(hits)))
        else:
            ruleset = self._base
        self.rule_sets.append(ruleset)
        self.accept.append(bool(ruleset))
        self._flat.extend([-1] * self._k)
        self._index[key] = idx
        return idx

    def _fill(self, state: int, cls: int, budget: Optional[int] = None,
              message: str = "lazy union determinization exceeded state budget") -> int:
        """Materialize one union transition; returns the *scaled* target."""
        k = self._k
        with self._lock:
            nxt = self._flat[state * k + cls]
            if nxt >= 0:
                return nxt
            active: List[Tuple[int, int]] = []
            hits: List[int] = []
            seen = set()
            rest = self._rest
            racc = self._racc
            for r, q in self._states[state]:
                seen.add(r)
                nq = self._rule_step(r, q, cls)
                if nq == rest[r]:
                    continue  # back to rest: drop from the sparse key
                active.append((r, nq))
                if racc[r][nq]:
                    hits.append(r)
            excited = self._excite[cls]
            if excited:
                for r, tgt, acc in excited:
                    if r not in seen:
                        active.append((r, tgt))
                        if acc:
                            hits.append(r)
                active.sort()
            key = tuple(active)
            idx = self._index.get(key)
            if idx is None:
                idx = self._intern_union_state(key, hits, budget, message)
            self._flat[state * k + cls] = idx * k
            return idx * k

    def step(self, state: int, cls: int) -> int:
        nxt = self._flat[state * self._k + cls]
        if nxt < 0:
            nxt = self._fill(state, cls)
        return nxt // self._k

    def run_classes(self, classes: Iterable[int], start: Optional[int] = None) -> int:
        k = self._k
        flat = self._flat
        f = (self.initial if start is None else start) * k
        for c in _as_int_list(classes):
            nf = flat[f + c]
            if nf < 0:
                nf = self._fill(f // k, c)
            f = nf
        return f // k

    def rule_set(self, state: int) -> Tuple[int, ...]:
        """Sorted rule indices matched in union state ``state``."""
        return self.rule_sets[state]

    def freeze(
        self, max_states: Optional[int] = None
    ) -> Tuple[DFA, Tuple[Tuple[int, ...], ...]]:
        """Complete the closure and return the eager ``(DFA, rule_sets)``.

        Equivalent to running the eager union subset construction (same
        sparse-state bijection; the error carries the same message so
        callers can't tell which path exceeded the budget), except that
        states already materialized by scans keep their indices.
        """
        k = self._k
        msg = "union subset construction exceeded state budget"
        with self._lock:
            i = 0
            while i < len(self._states):
                base = i * k
                for c in range(k):
                    if self._flat[base + c] < 0:
                        self._fill(i, c, budget=max_states, message=msg)
                i += 1
            n = len(self._states)
            table = np.array(self._flat[: n * k], dtype=np.int32).reshape(n, k) // k
            accept = np.array(self.accept, dtype=bool)
            dfa = DFA(table, self.initial, accept, self.partition)
            return dfa, tuple(self.rule_sets)
