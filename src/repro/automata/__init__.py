"""Automata core: NFA, DFA, state mappings, SFA, lazy construction, ops.

The central objects of the reproduction:

* :class:`~repro.automata.nfa.NFA` — built from a regex AST by the
  McNaughton–Yamada (Glushkov) position construction, as in the paper.
* :class:`~repro.automata.dfa.DFA` — built by subset construction
  (paper Algorithm 1), minimized by Moore/Hopcroft.
* :class:`~repro.automata.sfa.SFA` — built by *correspondence construction*
  (paper Algorithm 4) from either a DFA (D-SFA) or an NFA (N-SFA); its
  states are mappings over the original automaton's states.
"""

from repro.automata.backend import (
    AutomatonBackend,
    BACKEND_NAMES,
    DEFAULT_EAGER_STATE_BUDGET,
    DEFAULT_LAZY_STATE_BUDGET,
    is_lazy,
)
from repro.automata.dfa import DFA, minimize, subset_construction
from repro.automata.dot import to_dot
from repro.automata.mapping import Correspondence, Transformation
from repro.automata.nfa import NFA, glushkov_nfa, thompson_nfa
from repro.automata.serialize import load_dfa, load_sfa, save_dfa, save_sfa
from repro.automata.sfa import SFA, correspondence_construction
from repro.automata.stride import StrideTable, build_stride_table
from repro.automata.lazy import LazyDFA, LazySFA, LazyUnionDFA
from repro.automata import ops

__all__ = [
    "AutomatonBackend",
    "BACKEND_NAMES",
    "DEFAULT_EAGER_STATE_BUDGET",
    "DEFAULT_LAZY_STATE_BUDGET",
    "DFA",
    "NFA",
    "SFA",
    "Correspondence",
    "LazyDFA",
    "LazySFA",
    "LazyUnionDFA",
    "StrideTable",
    "Transformation",
    "build_stride_table",
    "correspondence_construction",
    "glushkov_nfa",
    "is_lazy",
    "load_dfa",
    "load_sfa",
    "minimize",
    "ops",
    "save_dfa",
    "save_sfa",
    "subset_construction",
    "thompson_nfa",
    "to_dot",
]
