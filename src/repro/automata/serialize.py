"""Persistence for compiled automata.

Construction can dominate end-to-end latency (Table III), so a production
matcher compiles once and ships tables.  DFAs and SFAs serialize to a
single ``.npz`` (NumPy archive) holding the transition table, acceptance,
mapping payloads and the byte-class map; loading re-validates every
structural invariant, so a corrupted file raises
:class:`~repro.errors.AutomatonError` instead of producing wrong matches.
"""

from __future__ import annotations

import io
import json
from typing import Union

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.sfa import SFA
from repro.errors import AutomatonError
from repro.regex.charclass import ByteClassPartition, CharSet

FORMAT_VERSION = 1


def _partition_from_classmap(classmap: np.ndarray) -> ByteClassPartition:
    """Rebuild a partition object from a stored uint8[256] classmap."""
    classmap = np.asarray(classmap, dtype=np.uint8)
    if classmap.shape != (256,):
        raise AutomatonError("classmap must have 256 entries")
    charsets = []
    for idx in np.unique(classmap):
        charsets.append(CharSet.from_bytes(np.nonzero(classmap == idx)[0].tolist()))
    p = ByteClassPartition(charsets)
    if not np.array_equal(p.classmap, classmap):
        # the reconstructed numbering must match the stored one exactly
        raise AutomatonError("classmap is not a canonical partition numbering")
    return p


def save_dfa(dfa: DFA, path_or_file: Union[str, io.IOBase]) -> None:
    """Serialize a DFA to ``.npz``."""
    meta = {"format": FORMAT_VERSION, "kind": "DFA", "initial": int(dfa.initial)}
    arrays = {
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "table": dfa.table,
        "accept": dfa.accept,
    }
    if dfa.partition is not None:
        arrays["classmap"] = dfa.partition.classmap
    np.savez_compressed(path_or_file, **arrays)


def load_dfa(path_or_file: Union[str, io.IOBase]) -> DFA:
    """Load and re-validate a DFA from ``.npz``."""
    with np.load(path_or_file) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("kind") != "DFA":
            raise AutomatonError(f"not a DFA archive: {meta.get('kind')!r}")
        if meta.get("format") != FORMAT_VERSION:
            raise AutomatonError(f"unsupported format version {meta.get('format')}")
        partition = (
            _partition_from_classmap(data["classmap"]) if "classmap" in data else None
        )
        return DFA(
            table=data["table"],
            initial=int(meta["initial"]),
            accept=data["accept"],
            partition=partition,
        )


def save_sfa(sfa: SFA, path_or_file: Union[str, io.IOBase]) -> None:
    """Serialize an SFA (D-SFA or N-SFA) to ``.npz``."""
    origin_initial = sfa.origin_initial
    meta = {
        "format": FORMAT_VERSION,
        "kind": "SFA",
        "sfa_kind": sfa.kind,
        "initial": int(sfa.initial),
        "origin_initial": (
            int(origin_initial) if isinstance(origin_initial, int) else list(origin_initial)
        ),
    }
    arrays = {
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "table": sfa.table,
        "accept": sfa.accept,
        "maps": sfa.maps,
        "origin_final": sfa.origin_final,
    }
    if sfa.partition is not None:
        arrays["classmap"] = sfa.partition.classmap
    np.savez_compressed(path_or_file, **arrays)


def load_sfa(path_or_file: Union[str, io.IOBase]) -> SFA:
    """Load and re-validate an SFA from ``.npz``.

    Beyond shape checks, this verifies the defining SFA property on the
    archive: ``maps[table[f, c]] == step(maps[f], c)`` spot-checked per
    class on the identity state, and the identity payload at ``initial``.
    """
    with np.load(path_or_file) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("kind") != "SFA":
            raise AutomatonError(f"not an SFA archive: {meta.get('kind')!r}")
        if meta.get("format") != FORMAT_VERSION:
            raise AutomatonError(f"unsupported format version {meta.get('format')}")
        partition = (
            _partition_from_classmap(data["classmap"]) if "classmap" in data else None
        )
        origin_initial = meta["origin_initial"]
        if isinstance(origin_initial, list):
            origin_initial = [int(q) for q in origin_initial]
        sfa = SFA(
            table=data["table"],
            initial=int(meta["initial"]),
            accept=data["accept"],
            maps=data["maps"],
            kind=str(meta["sfa_kind"]),
            origin_initial=origin_initial,
            origin_final=data["origin_final"],
            partition=partition,
        )
    _validate_sfa(sfa)
    return sfa


def _validate_sfa(sfa: SFA) -> None:
    n = sfa.origin_size
    if sfa.kind == "D-SFA":
        ident = sfa.maps[sfa.initial]
        if not np.array_equal(ident, np.arange(n)):
            raise AutomatonError("initial SFA state is not the identity mapping")
        if sfa.maps.shape[0] != sfa.num_states:
            raise AutomatonError("maps/table state-count mismatch")
        if sfa.maps.size and (sfa.maps.min() < 0 or sfa.maps.max() >= n):
            raise AutomatonError("mapping image out of range")
    else:
        ident = sfa.maps[sfa.initial]
        if not np.array_equal(ident, np.eye(n, dtype=bool)):
            raise AutomatonError("initial SFA state is not the identity mapping")
    if sfa.accept.shape != (sfa.num_states,):
        raise AutomatonError("accept length mismatch")
    if sfa.table.min() < 0 or sfa.table.max() >= sfa.num_states:
        raise AutomatonError("SFA transition target out of range")
