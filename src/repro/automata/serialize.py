"""Persistence for compiled automata and rulesets.

Construction can dominate end-to-end latency (Table III), so a production
matcher compiles once and ships tables.  DFAs, SFAs and whole compiled
rulesets serialize to a single ``.npz`` (NumPy archive) holding the
transition tables, acceptance, mapping payloads, per-state matched-rule
sets and the byte-class map; loading re-validates every structural
invariant, so a corrupted file raises
:class:`~repro.errors.AutomatonError` instead of producing wrong matches.

Format history: v1 shipped DFA/SFA archives; v2 adds the ``RULESET`` kind
(union DFA + ragged rule sets + rule sources/flags, optional union D-SFA).
Writers emit v2; loaders accept both v1 and v2 archives.
"""

from __future__ import annotations

import io
import json
from typing import Optional, Union

import numpy as np

from repro.automata.dfa import DFA
from repro.automata.sfa import SFA
from repro.errors import AutomatonError
from repro.regex.charclass import ByteClassPartition, CharSet

FORMAT_VERSION = 2

#: Formats this loader understands; DFA/SFA layouts are unchanged between
#: v1 and v2, so both remain loadable.  Rulesets exist only from v2 on.
SUPPORTED_FORMATS = (1, 2)


def _required(data, name: str) -> np.ndarray:
    """Fetch a required archive array, or fail with the module's contract."""
    try:
        return data[name]
    except KeyError:
        raise AutomatonError(f"archive is missing array {name!r}") from None


def _read_meta(data) -> dict:
    try:
        raw = data["meta"]
    except KeyError:
        raise AutomatonError("archive has no metadata record") from None
    try:
        return json.loads(bytes(raw).decode())
    except ValueError as e:
        raise AutomatonError(f"unreadable archive metadata: {e}") from None


def _check_table_width(table: np.ndarray, partition, what: str) -> None:
    """A table must have one column per byte class of its partition.

    A width mismatch is not caught by any range check, yet makes the
    pre-scaled flat-list walk read entries from adjacent state rows —
    silently wrong matches, exactly what this module promises to prevent.
    """
    if partition is not None and table.shape[1] != partition.num_classes:
        raise AutomatonError(
            f"{what} table width {table.shape[1]} != "
            f"{partition.num_classes} byte classes"
        )


def _meta_int(meta: dict, key: str) -> int:
    """Fetch a required integer metadata field, or fail the documented way."""
    try:
        return int(meta[key])
    except (KeyError, TypeError, ValueError):
        raise AutomatonError(
            f"archive metadata field {key!r} is missing or invalid"
        ) from None


def _partition_from_classmap(classmap: np.ndarray) -> ByteClassPartition:
    """Rebuild a partition object from a stored uint8[256] classmap."""
    classmap = np.asarray(classmap, dtype=np.uint8)
    if classmap.shape != (256,):
        raise AutomatonError("classmap must have 256 entries")
    charsets = []
    for idx in np.unique(classmap):
        charsets.append(CharSet.from_bytes(np.nonzero(classmap == idx)[0].tolist()))
    p = ByteClassPartition(charsets)
    if not np.array_equal(p.classmap, classmap):
        # the reconstructed numbering must match the stored one exactly
        raise AutomatonError("classmap is not a canonical partition numbering")
    return p


def save_dfa(dfa: DFA, path_or_file: Union[str, io.IOBase]) -> None:
    """Serialize a DFA to ``.npz``."""
    meta = {"format": FORMAT_VERSION, "kind": "DFA", "initial": int(dfa.initial)}
    arrays = {
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "table": dfa.table,
        "accept": dfa.accept,
    }
    if dfa.partition is not None:
        arrays["classmap"] = dfa.partition.classmap
    np.savez_compressed(path_or_file, **arrays)


def load_dfa(path_or_file: Union[str, io.IOBase]) -> DFA:
    """Load and re-validate a DFA from ``.npz``."""
    with np.load(path_or_file) as data:
        meta = _read_meta(data)
        if meta.get("kind") != "DFA":
            raise AutomatonError(f"not a DFA archive: {meta.get('kind')!r}")
        if meta.get("format") not in SUPPORTED_FORMATS:
            raise AutomatonError(f"unsupported format version {meta.get('format')}")
        partition = (
            _partition_from_classmap(data["classmap"]) if "classmap" in data else None
        )
        dfa = DFA(
            table=_required(data, "table"),
            initial=_meta_int(meta, "initial"),
            accept=_required(data, "accept"),
            partition=partition,
        )
    _check_table_width(dfa.table, partition, "DFA")
    return dfa


def save_sfa(sfa: SFA, path_or_file: Union[str, io.IOBase]) -> None:
    """Serialize an SFA (D-SFA or N-SFA) to ``.npz``."""
    origin_initial = sfa.origin_initial
    meta = {
        "format": FORMAT_VERSION,
        "kind": "SFA",
        "sfa_kind": sfa.kind,
        "initial": int(sfa.initial),
        "origin_initial": (
            int(origin_initial) if isinstance(origin_initial, int) else list(origin_initial)
        ),
    }
    arrays = {
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "table": sfa.table,
        "accept": sfa.accept,
        "maps": sfa.maps,
        "origin_final": sfa.origin_final,
    }
    if sfa.partition is not None:
        arrays["classmap"] = sfa.partition.classmap
    np.savez_compressed(path_or_file, **arrays)


def load_sfa(path_or_file: Union[str, io.IOBase]) -> SFA:
    """Load and re-validate an SFA from ``.npz``.

    Beyond shape checks, this verifies the defining SFA property on the
    archive: ``maps[table[f, c]] == step(maps[f], c)`` spot-checked per
    class on the identity state, and the identity payload at ``initial``.
    """
    with np.load(path_or_file) as data:
        meta = _read_meta(data)
        if meta.get("kind") != "SFA":
            raise AutomatonError(f"not an SFA archive: {meta.get('kind')!r}")
        if meta.get("format") not in SUPPORTED_FORMATS:
            raise AutomatonError(f"unsupported format version {meta.get('format')}")
        partition = (
            _partition_from_classmap(data["classmap"]) if "classmap" in data else None
        )
        if "origin_initial" not in meta:
            raise AutomatonError(
                "archive metadata field 'origin_initial' is missing"
            )
        origin_initial = meta["origin_initial"]
        if isinstance(origin_initial, list):
            origin_initial = [int(q) for q in origin_initial]
        sfa_kind = meta.get("sfa_kind")
        if sfa_kind not in ("D-SFA", "N-SFA"):
            raise AutomatonError(
                f"archive metadata field 'sfa_kind' is missing or invalid: "
                f"{sfa_kind!r}"
            )
        sfa = SFA(
            table=_required(data, "table"),
            initial=_meta_int(meta, "initial"),
            accept=_required(data, "accept"),
            maps=_required(data, "maps"),
            kind=sfa_kind,
            origin_initial=origin_initial,
            origin_final=_required(data, "origin_final"),
            partition=partition,
        )
    _check_table_width(sfa.table, partition, "SFA")
    _validate_sfa(sfa)
    return sfa


def save_ruleset(
    ruleset,
    path_or_file: Union[str, io.IOBase],
    include_sfa: Optional[bool] = None,
) -> None:
    """Serialize a compiled :class:`~repro.matching.multi.MultiPatternSet`.

    The archive (format v2, kind ``RULESET``) holds the union DFA, the
    ragged per-state matched-rule sets, and the rule sources with their
    per-rule ignore-case flags — everything :func:`load_ruleset` needs to
    rebuild a scan-ready engine without re-parsing a single rule.  A
    plain ``save_sfa`` of the union automaton would be rule-blind: its
    acceptance collapses "which rules matched" to one bit.

    ``include_sfa`` additionally ships the union D-SFA.  Default
    (``None``): include it only when already built — the D-SFA ``maps``
    payload is ``|S|·|D|`` ints, so for large union automata shipping the
    DFA and rebuilding the D-SFA lazily on load is the cheaper trade.

    The archive format is eager by definition (it *is* the materialized
    tables), so a lazy or sharded ruleset (DESIGN.md §3.11) is frozen
    first — the warm reachable closure is completed and serialized as an
    eager set.  When the closure exceeds the eager state budget the set
    cannot be represented on disk and an :class:`AutomatonError` naming
    the backend is raised; the in-memory set is left usable.
    """
    backend = getattr(ruleset, "backend", "eager")
    if backend != "eager":
        from repro.errors import StateExplosionError

        try:
            ruleset.freeze()
        except StateExplosionError as e:
            raise AutomatonError(
                f"cannot serialize a backend={backend!r} ruleset: freezing "
                f"its automaton exceeded the eager state budget ({e}); "
                f"raise max_dfa_states or keep the set in memory"
            ) from e
    dfa = ruleset.dfa
    if dfa.partition is None:  # pragma: no cover - multi always has one
        raise AutomatonError("ruleset DFA has no byte-class partition")
    if include_sfa is None:
        include_sfa = ruleset._sfa is not None
    offsets = np.zeros(dfa.num_states + 1, dtype=np.int64)
    flat: list = []
    for s, rules in enumerate(ruleset.rule_sets):
        flat.extend(int(r) for r in rules)
        offsets[s + 1] = len(flat)
    meta = {
        "format": FORMAT_VERSION,
        "kind": "RULESET",
        "mode": ruleset.mode,
        "initial": int(dfa.initial),
        "patterns": list(ruleset.patterns),
        "flags": [bool(f) for f in ruleset.rule_flags],
        "has_sfa": bool(include_sfa),
    }
    # §3.13 optimizer provenance: the persisted rule_sets already carry
    # original ids (remapped at compile time), so the archive stays
    # loadable by older readers; the provenance is additive metadata that
    # lets `repro analyze` explain why the tables are smaller than the
    # rule count suggests.
    opt_info = getattr(ruleset, "optimize_info", None)
    if opt_info is not None:
        meta["optimize"] = opt_info.to_meta()
    arrays = {
        "table": dfa.table,
        "accept": dfa.accept,
        "classmap": dfa.partition.classmap,
        "rule_offsets": offsets,
        "rule_indices": np.asarray(flat, dtype=np.int32),
    }
    if include_sfa:
        sfa = ruleset.sfa
        meta["sfa_initial"] = int(sfa.initial)
        arrays.update(
            sfa_table=sfa.table,
            sfa_accept=sfa.accept,
            sfa_maps=sfa.maps,
            sfa_origin_final=sfa.origin_final,
        )
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path_or_file, **arrays)


def load_ruleset(path_or_file: Union[str, io.IOBase]):
    """Load and re-validate a compiled ruleset from ``.npz`` (format ≥ 2).

    Returns a :class:`~repro.matching.multi.MultiPatternSet` ready to
    ``matches``/``scan_chunked``/stream: the union DFA and rule sets come
    straight from the archive, and the union D-SFA is either restored
    (when the archive ships one) or rebuilt lazily on first chunked scan.
    """
    from repro.matching.multi import MultiPatternSet

    with np.load(path_or_file) as data:
        meta = _read_meta(data)
        if meta.get("kind") != "RULESET":
            raise AutomatonError(f"not a ruleset archive: {meta.get('kind')!r}")
        if meta.get("format") not in SUPPORTED_FORMATS:
            raise AutomatonError(f"unsupported format version {meta.get('format')}")
        if meta.get("format") < 2:
            raise AutomatonError("ruleset archives need format version >= 2")
        if "classmap" not in data:
            raise AutomatonError("ruleset archive has no byte-class map")
        partition = _partition_from_classmap(data["classmap"])
        patterns = meta.get("patterns")
        flags = meta.get("flags")
        mode = meta.get("mode")
        if not isinstance(patterns, list) or not patterns:
            raise AutomatonError("ruleset archive has no rule sources")
        if not isinstance(flags, list) or len(flags) != len(patterns):
            raise AutomatonError("per-rule flags do not match the rule count")
        if mode not in ("search", "fullmatch"):
            raise AutomatonError(f"unknown ruleset mode {mode!r}")
        dfa = DFA(
            table=_required(data, "table"),
            initial=_meta_int(meta, "initial"),
            accept=_required(data, "accept"),
            partition=partition,
        )
        _check_table_width(dfa.table, partition, "union DFA")
        offsets = np.asarray(_required(data, "rule_offsets"), dtype=np.int64)
        indices = np.asarray(_required(data, "rule_indices"), dtype=np.int64)
        if (
            offsets.shape != (dfa.num_states + 1,)
            or offsets[0] != 0
            or offsets[-1] != len(indices)
            or (np.diff(offsets) < 0).any()
        ):
            raise AutomatonError("rule_offsets is not a valid ragged index")
        if len(indices) and (indices.min() < 0 or indices.max() >= len(patterns)):
            raise AutomatonError("rule index out of range")
        # Acceptance must agree with per-state rule counts; vectorized —
        # a 200k-state union would otherwise pay a Python loop at load.
        mismatch = dfa.accept.astype(bool) != (np.diff(offsets) > 0)
        if mismatch.any():
            raise AutomatonError(
                "acceptance / rule_sets mismatch at state "
                f"{int(np.nonzero(mismatch)[0][0])}"
            )
        # Slices stay NumPy views; from_components normalizes to tuples
        # (a single conversion pass for the whole archive).
        rule_sets = [
            indices[a:b] for a, b in zip(offsets[:-1], offsets[1:])
        ]
        sfa = None
        if meta.get("has_sfa"):
            sfa = SFA(
                table=_required(data, "sfa_table"),
                initial=_meta_int(meta, "sfa_initial"),
                accept=_required(data, "sfa_accept"),
                maps=_required(data, "sfa_maps"),
                kind="D-SFA",
                origin_initial=_meta_int(meta, "initial"),
                origin_final=_required(data, "sfa_origin_final"),
                partition=partition,
            )
    if sfa is not None:
        _check_table_width(sfa.table, partition, "union D-SFA")
        _validate_sfa(sfa)
        if sfa.origin_size != dfa.num_states:
            raise AutomatonError("union D-SFA origin size != union DFA size")
        if not np.array_equal(sfa.origin_final, dfa.accept):
            raise AutomatonError("union D-SFA origin_final != DFA acceptance")
    optimize_meta = meta.get("optimize")
    if optimize_meta is not None and not isinstance(optimize_meta, dict):
        raise AutomatonError("malformed optimize provenance in archive")
    try:
        return MultiPatternSet.from_components(
            patterns=patterns,
            flags=flags,
            mode=mode,
            partition=partition,
            dfa=dfa,
            rule_sets=rule_sets,
            sfa=sfa,
            optimize_meta=optimize_meta,
        )
    except (KeyError, TypeError, ValueError) as e:
        raise AutomatonError(
            f"malformed optimize provenance in archive: {e}"
        ) from None


def _validate_sfa(sfa: SFA) -> None:
    n = sfa.origin_size
    if sfa.kind == "D-SFA":
        ident = sfa.maps[sfa.initial]
        if not np.array_equal(ident, np.arange(n)):
            raise AutomatonError("initial SFA state is not the identity mapping")
        if sfa.maps.shape[0] != sfa.num_states:
            raise AutomatonError("maps/table state-count mismatch")
        if sfa.maps.size and (sfa.maps.min() < 0 or sfa.maps.max() >= n):
            raise AutomatonError("mapping image out of range")
    else:
        ident = sfa.maps[sfa.initial]
        if not np.array_equal(ident, np.eye(n, dtype=bool)):
            raise AutomatonError("initial SFA state is not the identity mapping")
    if sfa.accept.shape != (sfa.num_states,):
        raise AutomatonError("accept length mismatch")
    if sfa.table.min() < 0 or sfa.table.max() >= sfa.num_states:
        raise AutomatonError("SFA transition target out of range")
