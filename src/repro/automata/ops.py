"""Language-level operations on DFAs.

All binary operations align alphabets by expanding both operands to the raw
256-byte alphabet through their class maps, so DFAs built with different
byte-class partitions compose correctly.  For symbolic automata (``partition
is None``) both operands must share ``num_classes``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import DFA, minimize
from repro.errors import AutomatonError
from repro.regex.charclass import ByteClassPartition, CharSet


def _aligned_tables(a: DFA, b: DFA) -> Tuple[np.ndarray, np.ndarray, Optional[ByteClassPartition]]:
    """Bring two DFAs onto a common alphabet; return their tables."""
    if a.partition is not None and b.partition is not None:
        return a.byte_table(), b.byte_table(), ByteClassPartition([CharSet.any_byte()])
    if a.partition is None and b.partition is None:
        if a.num_classes != b.num_classes:
            raise AutomatonError("symbolic DFAs with different alphabets")
        return a.table, b.table, None
    raise AutomatonError("cannot mix byte-alphabet and symbolic DFAs")


def _product(a: DFA, b: DFA, combine) -> DFA:
    """Accessible product construction with acceptance ``combine``."""
    ta, tb, _ = _aligned_tables(a, b)
    k = ta.shape[1]
    index: Dict[Tuple[int, int], int] = {(a.initial, b.initial): 0}
    pairs: List[Tuple[int, int]] = [(a.initial, b.initial)]
    rows: List[List[int]] = []
    i = 0
    while i < len(pairs):
        pa, pb = pairs[i]
        row = [0] * k
        for c in range(k):
            nxt = (int(ta[pa, c]), int(tb[pb, c]))
            idx = index.get(nxt)
            if idx is None:
                idx = len(pairs)
                index[nxt] = idx
                pairs.append(nxt)
            row[c] = idx
        rows.append(row)
        i += 1
    accept = np.array(
        [combine(bool(a.accept[pa]), bool(b.accept[pb])) for pa, pb in pairs],
        dtype=bool,
    )
    # The product ran over raw bytes, so its alphabet is one class per byte.
    partition = _byte_identity_partition() if a.partition is not None else None
    return DFA(np.array(rows, dtype=np.int32), 0, accept, partition)


_BYTE_IDENTITY: Optional[ByteClassPartition] = None


def _byte_identity_partition() -> ByteClassPartition:
    """A partition with one class per byte (for byte-alphabet products)."""
    global _BYTE_IDENTITY
    if _BYTE_IDENTITY is None:
        p = ByteClassPartition([CharSet.single(b) for b in range(256)])
        assert p.num_classes == 256
        _BYTE_IDENTITY = p
    return _BYTE_IDENTITY


def intersect(a: DFA, b: DFA) -> DFA:
    """DFA for ``L(a) ∩ L(b)``."""
    return _product(a, b, lambda x, y: x and y)


def union(a: DFA, b: DFA) -> DFA:
    """DFA for ``L(a) ∪ L(b)``."""
    return _product(a, b, lambda x, y: x or y)


def difference(a: DFA, b: DFA) -> DFA:
    """DFA for ``L(a) \\ L(b)``."""
    return _product(a, b, lambda x, y: x and not y)


def complement(dfa: DFA) -> DFA:
    """DFA for the complement language (tables here are always complete)."""
    return DFA(dfa.table.copy(), dfa.initial, ~dfa.accept, dfa.partition)


def is_empty(dfa: DFA) -> bool:
    """True iff the DFA accepts no word."""
    mask = dfa.reachable_mask()
    return not bool(dfa.accept[mask].any())


def equivalent(a: DFA, b: DFA) -> bool:
    """Hopcroft–Karp union-find equivalence test."""
    ta, tb, _ = _aligned_tables(a, b)
    k = ta.shape[1]
    parent: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def find(x):
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def tag(dfa_id: int, q: int) -> Tuple[int, int]:
        return (dfa_id, q)

    queue = deque([(tag(0, a.initial), tag(1, b.initial))])
    parent[tag(1, b.initial)] = tag(0, a.initial)
    while queue:
        x, y = queue.popleft()
        ax = a.accept[x[1]] if x[0] == 0 else b.accept[x[1]]
        ay = a.accept[y[1]] if y[0] == 0 else b.accept[y[1]]
        if bool(ax) != bool(ay):
            return False
        for c in range(k):
            nx = tag(x[0], int(ta[x[1], c]) if x[0] == 0 else int(tb[x[1], c]))
            ny = tag(y[0], int(ta[y[1], c]) if y[0] == 0 else int(tb[y[1], c]))
            rx, ry = find(nx), find(ny)
            if rx != ry:
                parent[ry] = rx
                queue.append((rx, ry))
    return True


def shortest_accepted(dfa: DFA) -> Optional[List[int]]:
    """BFS for a shortest accepted class sequence; ``None`` if L is empty."""
    n = dfa.num_states
    prev: List[Optional[Tuple[int, int]]] = [None] * n
    seen = [False] * n
    seen[dfa.initial] = True
    queue = deque([dfa.initial])
    target = -1
    if dfa.accept[dfa.initial]:
        return []
    while queue:
        q = queue.popleft()
        for c in range(dfa.num_classes):
            r = int(dfa.table[q, c])
            if not seen[r]:
                seen[r] = True
                prev[r] = (q, c)
                if dfa.accept[r]:
                    target = r
                    queue.clear()
                    break
                queue.append(r)
    if target < 0:
        return None
    path: List[int] = []
    cur = target
    while prev[cur] is not None:
        q, c = prev[cur]
        path.append(c)
        cur = q
    path.reverse()
    return path


def count_words_of_length(dfa: DFA, length: int, by_bytes: bool = False) -> int:
    """Number of accepted sequences of exactly ``length`` symbols.

    Dynamic programming over the transition table with Python ints (no
    overflow).  By default symbols are byte *classes*; with
    ``by_bytes=True`` each class transition is weighted by the number of
    raw bytes in the class, counting accepted byte strings instead.  Used
    by text generators and in tests as a language fingerprint that is much
    stronger than spot membership checks.
    """
    if by_bytes:
        if dfa.partition is None:
            raise AutomatonError("byte counting needs a ByteClassPartition")
        weights = [
            int((dfa.partition.classmap == c).sum()) for c in range(dfa.num_classes)
        ]
    else:
        weights = [1] * dfa.num_classes
    counts = [0] * dfa.num_states
    counts[dfa.initial] = 1
    for _ in range(length):
        nxt = [0] * dfa.num_states
        for q, cnt in enumerate(counts):
            if cnt:
                for c in range(dfa.num_classes):
                    nxt[int(dfa.table[q, c])] += cnt * weights[c]
        counts = nxt
    return sum(cnt for q, cnt in enumerate(counts) if dfa.accept[q])


def language_fingerprint(dfa: DFA, max_len: int = 8) -> Tuple[int, ...]:
    """Tuple of accepted-word counts for lengths ``0..max_len``."""
    return tuple(count_words_of_length(dfa, i) for i in range(max_len + 1))


def minimal(dfa: DFA) -> DFA:
    """Alias for :func:`repro.automata.dfa.minimize` (readability)."""
    return minimize(dfa)
