"""Graphviz DOT export for automata.

Regenerates the paper's automaton drawings as artifacts: Fig. 1 (DFA of
``(ab)*``), Fig. 2 (its SFA), Figs. 4–5 (the r_2 DFA and D-SFA), and the
witness automata of Figs. 11–12.  Transitions sharing (source, target)
are merged into one edge labelled with the union of their byte classes.

The output is plain DOT text; render with ``dot -Tsvg`` where graphviz is
available, or just diff it in tests (which is what we do — structure is
asserted without needing the binary).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple, Union

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.sfa import SFA
from repro.regex.charclass import ByteClassPartition, CharSet
from repro.regex.printer import charset_to_pattern
from repro.util.bitset import bits_of, iter_bits


def _class_label(partition: Optional[ByteClassPartition], cls: int) -> str:
    """Human label for a byte class (falls back to the class index)."""
    if partition is None:
        return f"c{cls}"
    members = [b for b in range(256) if partition.classmap[b] == cls]
    return charset_to_pattern(CharSet.from_bytes(members))


def _merge_labels(labels: List[str]) -> str:
    return ", ".join(labels)


def _header(name: str, rankdir: str) -> List[str]:
    return [
        f"digraph {name} {{",
        f"  rankdir={rankdir};",
        "  node [shape=circle, fontsize=11];",
        '  __start [shape=point, label=""];',
    ]


def nfa_to_dot(nfa: NFA, name: str = "NFA", rankdir: str = "LR") -> str:
    """Render an NFA; initial states get an arrow, finals double circles."""
    lines = _header(name, rankdir)
    for q in bits_of(nfa.final):
        lines.append(f"  q{q} [shape=doublecircle];")
    for q in bits_of(nfa.initial):
        lines.append(f"  __start -> q{q};")
    edges: Dict[Tuple[int, int], List[str]] = defaultdict(list)
    for q in range(nfa.num_states):
        for c in range(nfa.num_classes):
            for r in iter_bits(nfa.trans[q][c]):
                edges[(q, r)].append(_class_label(nfa.partition, c))
    for (q, r), labels in sorted(edges.items()):
        lines.append(f'  q{q} -> q{r} [label="{_merge_labels(labels)}"];')
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(
    dfa: DFA,
    name: str = "DFA",
    rankdir: str = "LR",
    hide_traps: bool = False,
) -> str:
    """Render a DFA.  ``hide_traps`` drops fail sinks (the paper's Fig. 4
    convention, which draws the partial automaton)."""
    traps = set(dfa.trap_states().tolist()) if hide_traps else set()
    lines = _header(name, rankdir)
    for q in range(dfa.num_states):
        if q in traps:
            continue
        if dfa.accept[q]:
            lines.append(f"  q{q} [shape=doublecircle];")
    lines.append(f"  __start -> q{dfa.initial};")
    edges: Dict[Tuple[int, int], List[str]] = defaultdict(list)
    for q in range(dfa.num_states):
        if q in traps:
            continue
        for c in range(dfa.num_classes):
            r = int(dfa.table[q, c])
            if r in traps:
                continue
            edges[(q, r)].append(_class_label(dfa.partition, c))
    for (q, r), labels in sorted(edges.items()):
        lines.append(f'  q{q} -> q{r} [label="{_merge_labels(labels)}"];')
    lines.append("}")
    return "\n".join(lines)


def sfa_to_dot(
    sfa: SFA,
    name: str = "SFA",
    rankdir: str = "LR",
    hide_traps: bool = False,
    show_mappings: bool = False,
) -> str:
    """Render an SFA; with ``show_mappings`` each node is annotated with
    its mapping (Table I inline), feasible for small SFAs only."""
    traps = set(sfa.trap_states().tolist()) if hide_traps else set()
    lines = _header(name, rankdir)
    for i in range(sfa.num_states):
        if i in traps:
            continue
        attrs = []
        if sfa.accept[i]:
            attrs.append("shape=doublecircle")
        if show_mappings:
            if sfa.kind == "D-SFA":
                body = ",".join(str(int(x)) for x in sfa.maps[i])
            else:
                body = ";".join(
                    "".join("1" if v else "0" for v in row) for row in sfa.maps[i]
                )
            attrs.append(f'label="f{i}\\n[{body}]"')
        if attrs:
            lines.append(f"  f{i} [{', '.join(attrs)}];")
    lines.append(f"  __start -> f{sfa.initial};")
    edges: Dict[Tuple[int, int], List[str]] = defaultdict(list)
    for i in range(sfa.num_states):
        if i in traps:
            continue
        for c in range(sfa.num_classes):
            j = int(sfa.table[i, c])
            if j in traps:
                continue
            edges[(i, j)].append(_class_label(sfa.partition, c))
    for (i, j), labels in sorted(edges.items()):
        lines.append(f'  f{i} -> f{j} [label="{_merge_labels(labels)}"];')
    lines.append("}")
    return "\n".join(lines)


def to_dot(automaton: Union[NFA, DFA, SFA], **kwargs) -> str:
    """Dispatching convenience wrapper."""
    if isinstance(automaton, NFA):
        return nfa_to_dot(automaton, **kwargs)
    if isinstance(automaton, DFA):
        return dfa_to_dot(automaton, **kwargs)
    if isinstance(automaton, SFA):
        return sfa_to_dot(automaton, **kwargs)
    raise TypeError(f"cannot render {type(automaton).__name__}")
