"""Multi-stride (superalphabet) transition tables.

The SFA construction pre-evaluates the all-states simulation into the
automaton; the same precomposition idea applies along the *input* axis.  A
transition table over ``k`` byte classes is a set of generators of the
transition monoid (one transformation per class), and composing them over
every ``s``-gram yields a table over the superalphabet of ``k^s`` symbols:

    T_s[q, (c_0, …, c_{s-1})] = δ(…δ(q, c_0)…, c_{s-1})

so a scan performs ``n/s`` lookups instead of ``n``.  The trade-off is
table size — ``|Q| · k^s`` entries — so construction is capped by a
table-byte budget and returns ``None`` beyond it; callers fall back to the
1-gram table.  Symbols are packed big-endian (the earliest class is the
most significant digit), matching :func:`repro.regex.charclass.pack_stride`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import AutomatonError

#: Default cap on a stride table's size; 4 MiB comfortably fits the paper's
#: pattern families (r_5's 110-state, 3-class D-SFA needs 35 KB at stride 4)
#: while refusing blow-ups like wide byte-class alphabets at stride 4.
DEFAULT_MAX_TABLE_BYTES = 4 << 20

#: Strides the kernels know how to drive (powers of two; built by doubling).
STRIDES = (2, 4)


@dataclass
class StrideTable:
    """A precomposed ``stride``-gram transition table.

    ``table[q, s]`` is the state reached from ``q`` after the ``stride``
    base symbols encoded in superalphabet symbol ``s``; the state space is
    the original automaton's, so per-chunk results feed the existing
    reductions unchanged.
    """

    table: np.ndarray
    stride: int
    base_classes: int

    def __post_init__(self) -> None:
        self.table = np.ascontiguousarray(self.table, dtype=np.int32)

    @property
    def num_states(self) -> int:
        return self.table.shape[0]

    @property
    def num_symbols(self) -> int:
        """``k^stride`` — the superalphabet width."""
        return self.table.shape[1]

    @property
    def table_bytes(self) -> int:
        return self.table.nbytes

    def pack(self, classes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pack a base-class stream into this table's symbols (+ tail)."""
        from repro.regex.charclass import pack_stride

        return pack_stride(classes, self.base_classes, self.stride)

    def __repr__(self) -> str:
        return (
            f"StrideTable(stride={self.stride}, states={self.num_states}, "
            f"symbols={self.num_symbols})"
        )


def build_stride_table(
    table: np.ndarray,
    stride: int,
    max_table_bytes: Optional[int] = DEFAULT_MAX_TABLE_BYTES,
) -> Optional[StrideTable]:
    """Precompose ``table`` over ``stride``-grams, or ``None`` if over budget.

    The composition doubles the gram length each round with one vectorized
    gather — ``T_{2s}[q, (u, v)] = T_s[T_s[q, u], v]`` reshaped to width
    ``w²`` — so a stride-4 table costs two gathers total.  The budget is
    checked on the *final* width before any allocation (``k^stride`` is
    computed in Python ints, so huge alphabets cannot overflow).
    """
    if stride not in STRIDES:
        raise AutomatonError(f"unsupported stride {stride!r} (choose from {STRIDES})")
    table = np.ascontiguousarray(table, dtype=np.int32)
    n, k = table.shape
    width = k**stride
    if max_table_bytes is not None and n * width * 4 > max_table_bytes:
        return None
    cur = table
    s = 1
    while s < stride:
        w = cur.shape[1]
        # cur2[q, u*w + v] = cur[cur[q, u], v] — one gather per doubling.
        cur = cur[cur].reshape(n, w * w)
        s *= 2
    return StrideTable(cur, stride, k)


def best_stride_table(
    automaton,
    stride: int,
    max_table_bytes: Optional[int] = None,
) -> Optional[StrideTable]:
    """The largest affordable precomposition with stride ≤ the requested one.

    ``stride4`` routinely blows any budget on wide byte-class alphabets
    (``k⁴`` columns — an IDS union automaton with 30+ classes would need
    gigabytes) while ``stride2`` fits comfortably.  Rather than collapsing
    all the way to the 1-gram table, try each supported stride from the
    requested one downward and return the first within budget, so the
    stride knob degrades gracefully instead of cliffing to the reference
    loop.  Tables are memoized per automaton exactly like
    :func:`cached_stride_table`; returns ``None`` when even the smallest
    supported stride is over budget.
    """
    if stride not in STRIDES:
        raise AutomatonError(f"unsupported stride {stride!r} (choose from {STRIDES})")
    for s in sorted((c for c in STRIDES if c <= stride), reverse=True):
        st = cached_stride_table(automaton, s, max_table_bytes)
        if st is not None:
            return st
    return None


def cached_stride_table(
    automaton,
    stride: int,
    max_table_bytes: Optional[int] = None,
) -> Optional[StrideTable]:
    """Build-and-memoize a stride table on ``automaton`` (DFA or SFA).

    The cache lives on the automaton object keyed by ``(stride, budget)``;
    a ``None`` (over-budget) outcome is cached too, so engines can probe on
    every call without re-checking the budget arithmetic.
    """
    budget = DEFAULT_MAX_TABLE_BYTES if max_table_bytes is None else max_table_bytes
    cache = getattr(automaton, "_stride_tables", None)
    if cache is None:
        cache = {}
        object.__setattr__(automaton, "_stride_tables", cache)
    key = (stride, budget)
    if key not in cache:
        cache[key] = build_stride_table(automaton.table, stride, budget)
    return cache[key]
