"""The automaton *backend* abstraction (DESIGN.md §3.11).

Every scan engine in this package ultimately asks one question of an
automaton: "given a state and a symbol class, what is the next state?"
Historically the answer was hard-coded as a dense-table access
(``table[q, c]``), which welds every engine to *eagerly materialized*
automata.  This module names the minimal query surface as a protocol so
"how the transitions are obtained" becomes a backend choice:

* ``"eager"`` — the transition table is fully built at compile time
  (:class:`~repro.automata.dfa.DFA`, :class:`~repro.automata.sfa.SFA`).
  Every kernel applies (stride precomposition, vectorized gathers,
  shared-memory publication) because the table is a plain dense array.
* ``"lazy"`` — states and transitions are materialized on first use
  (:class:`~repro.automata.lazy.LazyDFA`, ``LazySFA``,
  ``LazyUnionDFA``), the paper's §V-A escape hatch for constructions
  that explode.  Only the scalar walk applies until the automaton is
  :meth:`frozen <repro.automata.lazy.LazyDFA.freeze>` into an eager one.

Engines that accept either kind dispatch on this protocol instead of
reaching for ``.table`` directly; :func:`is_lazy` is the one-line probe.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

#: Backend names accepted by the compile-time ``backend=`` knobs.  The
#: ruleset-level knob adds ``"sharded"`` (rule-group decomposition) and
#: ``"auto"`` (planner cost model) on top of the two automaton kinds.
BACKEND_NAMES = ("auto", "eager", "lazy", "sharded")

#: Default budget for eager determinization (union subset construction);
#: exceeding it raises :class:`~repro.errors.StateExplosionError`.
DEFAULT_EAGER_STATE_BUDGET = 200_000

#: Default budget for lazily materialized states.  Far more generous than
#: the eager budget: lazy materialization is bounded by the *scanned text*
#: (≤ n+1 states after n symbols), not the worst-case cross-product, so
#: this is an OOM backstop rather than a feasibility bound.
DEFAULT_LAZY_STATE_BUDGET = 1_000_000


@runtime_checkable
class AutomatonBackend(Protocol):
    """The minimal transition-query surface every scan engine needs.

    Satisfied structurally by the eager :class:`~repro.automata.dfa.DFA` /
    :class:`~repro.automata.sfa.SFA` and by the lazy automata in
    :mod:`repro.automata.lazy`; nothing here implies a materialized table.
    """

    initial: int

    @property
    def num_classes(self) -> int: ...

    @property
    def num_materialized(self) -> int:
        """States created so far (for an eager automaton: all of them)."""
        ...

    def step(self, state: int, cls: int) -> int: ...

    def run_classes(
        self, classes: Iterable[int], start: Optional[int] = None
    ) -> int: ...


def is_lazy(automaton) -> bool:
    """Whether ``automaton`` materializes transitions on demand.

    Lazy automata advertise themselves with a ``lazy_backend`` marker
    attribute; eager table automata have none.  Engines use this to skip
    table-only accelerations (stride precomposition, vector gathers,
    shared-memory publication) that presume a dense array.
    """
    return bool(getattr(automaton, "lazy_backend", False))
