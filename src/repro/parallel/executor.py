"""Chunk executors: run per-chunk scans serially or on a thread pool.

On a multi-core interpreter-free runtime the thread pool is the paper's
pthread setup; under CPython the GIL serializes the scalar loops, so the
measured speedups in this repo come from the lockstep engine (see
DESIGN.md §3) while :class:`ThreadExecutor` exists to exercise the same
code path and for environments with free-threaded Python.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

import numpy as np

from repro.errors import MatchEngineError

T = TypeVar("T")


class ChunkExecutor:
    """Interface: map a scan function over chunk arrays, preserving order."""

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        raise NotImplementedError


class SerialExecutor(ChunkExecutor):
    """Run chunk scans one after another (reference executor)."""

    name = "serial"

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        return [fn(ch) for ch in chunks]


class ThreadExecutor(ChunkExecutor):
    """Run chunk scans on a shared thread pool.

    The pool is created once per executor and reused; creating threads per
    call is exactly the overhead Fig. 10 measures, so a ``fresh_threads``
    mode is provided for the overhead study.
    """

    name = "threads"

    def __init__(self, num_threads: int, fresh_threads: bool = False):
        if num_threads < 1:
            raise MatchEngineError("need at least one thread")
        self.num_threads = num_threads
        self.fresh_threads = fresh_threads
        self._pool = None if fresh_threads else ThreadPoolExecutor(max_workers=num_threads)

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        if self.fresh_threads:
            with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                return list(pool.map(fn, chunks))
        return list(self._pool.map(fn, chunks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
