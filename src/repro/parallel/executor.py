"""Chunk executors: run per-chunk scans serially, on threads, or on processes.

The paper's testbed runs Algorithm 5's chunk scans on pthreads.  Under
CPython the GIL serializes the scalar loops, so three backends coexist
(DESIGN.md §3):

* :class:`SerialExecutor` — the reference executor, one chunk after another.
* :class:`ThreadExecutor` — a shared thread pool; GIL-bound for the scalar
  kernels, but real parallelism on free-threaded builds and a faithful
  reproduction of the paper's pthread *structure*.
* :class:`ProcessExecutor` — true multicore execution via
  :mod:`multiprocessing`.  Transition tables are published **once** through
  :mod:`multiprocessing.shared_memory`; workers attach by name and rebuild a
  zero-copy :class:`numpy.ndarray` view, so per-chunk messages carry only a
  ``(kernel, segment name, span)`` descriptor — never the table.  The worker
  pool is persistent (warm) by default, with a ``fresh_workers`` cold mode
  mirroring the Fig. 10 thread-spawn overhead study, and falls back to
  serial execution where ``fork``/shared memory is unavailable.

All executors implement two entry points: the generic :meth:`~ChunkExecutor.map`
over chunk arrays, and the structured :meth:`~ChunkExecutor.scan` over
``(start, end)`` spans of one class array, which is what lets the process
backend avoid pickling closures (see :mod:`repro.parallel.scan`).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import secrets
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import MatchEngineError
from repro.parallel.scan import run_scan


T = TypeVar("T")

#: ``(name, shape, dtype string)`` — enough for a worker to rebuild a view.
ShmRef = Tuple[str, Tuple[int, ...], str]


class ChunkExecutor:
    """Interface: map a scan function over chunk arrays, preserving order."""

    name = "abstract"

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        raise NotImplementedError

    def scan(
        self,
        kind: str,
        table: np.ndarray,
        initial,
        classes: np.ndarray,
        spans: Sequence[Tuple[int, int]],
        kernel: str = "python",
        accept: Optional[np.ndarray] = None,
    ) -> List[Any]:
        """Run the named table-scan kernel over contiguous spans of ``classes``.

        ``kernel`` picks the scan shape (``"python"`` reference loop or the
        ``"vector"`` block-composed path; see :mod:`repro.parallel.scan`).
        ``initial`` is one state for every span, or a sequence with one
        entry per span (the span engine's stitched boundary states —
        DESIGN.md §3.7); ``accept`` rides along for ``"mask"`` scans.
        Default implementation: delegate to :meth:`map` with in-process
        views (``classes[a:b]`` never copies).  :class:`ProcessExecutor`
        overrides this with the shared-memory protocol.
        """
        inits = _span_initials(initial, spans)
        return self.map(
            lambda task: run_scan(
                kind, table, task[1], classes[task[0][0] : task[0][1]], kernel,
                accept,
            ),
            list(zip(spans, inits)),
        )

    def close(self) -> None:
        """Release pool/shared-memory resources (no-op for stateless executors)."""

    def __enter__(self) -> "ChunkExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _span_initials(initial, spans: Sequence[Tuple[int, int]]) -> List[int]:
    """Normalize the ``initial`` scan operand to one state per span."""
    if isinstance(initial, (list, tuple, np.ndarray)):
        if len(initial) != len(spans):
            raise MatchEngineError(
                f"{len(initial)} initial states for {len(spans)} spans"
            )
        return [int(q) for q in initial]
    return [int(initial)] * len(spans)


class SerialExecutor(ChunkExecutor):
    """Run chunk scans one after another (reference executor)."""

    name = "serial"

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        return [fn(ch) for ch in chunks]


class ThreadExecutor(ChunkExecutor):
    """Run chunk scans on a shared thread pool.

    The pool is created once per executor and reused; creating threads per
    call is exactly the overhead Fig. 10 measures, so a ``fresh_threads``
    mode is provided for the overhead study.
    """

    name = "threads"

    def __init__(self, num_threads: int, fresh_threads: bool = False):
        if num_threads < 1:
            raise MatchEngineError("need at least one thread")
        self.num_threads = num_threads
        self.fresh_threads = fresh_threads
        self._pool = None if fresh_threads else ThreadPoolExecutor(max_workers=num_threads)

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        if self.fresh_threads:
            with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                return list(pool.map(fn, chunks))
        return list(self._pool.map(fn, chunks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()


# ---------------------------------------------------------------------------
# Cross-process segment directory (pre-fork cache sharing, DESIGN.md §3.12)
# ---------------------------------------------------------------------------


class SegmentDirectory:
    """Cross-process registry of published table segments.

    The pre-fork service master creates one directory before forking its
    workers; every worker's :class:`ProcessExecutor` consults it under a
    shared lock, so a transition table compiled by one worker is copied
    into shared memory exactly once and *attached* (never re-published)
    by the rest.  The mapping ``{content key -> ShmRef}`` itself lives in
    one fixed shared-memory segment as a length-prefixed pickle — no
    broker process, readable by any forked child.

    Ownership: a segment registered here belongs to the directory.
    Worker executors close their mappings but never unlink registered
    names; the master unlinks every registered segment (and the
    directory segment itself) via ``close(unlink_segments=True)`` at
    teardown.
    """

    #: Fixed size of the pickled-mapping segment.  128 entries of
    #: (sha1 hex, shape, dtype) tuples pickle to a few KiB; 64 KiB is
    #: room to spare, and :meth:`register` degrades to "caller keeps
    #: local ownership" rather than raising when full.
    BYTES = 1 << 16

    def __init__(self, max_entries: int = 128):
        import multiprocessing
        from multiprocessing import shared_memory

        self.max_entries = max_entries
        ctx = multiprocessing
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        self._lock = ctx.Lock()
        self._seg = shared_memory.SharedMemory(
            create=True, size=self.BYTES,
            name=f"repro_dir_{secrets.token_hex(8)}",
        )
        self._store({})

    @property
    def name(self) -> str:
        return self._seg.name

    def _store(self, table: Dict[Any, ShmRef]) -> bool:
        blob = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) + 8 > self.BYTES:
            return False
        buf = self._seg.buf
        buf[0:8] = len(blob).to_bytes(8, "big")
        buf[8:8 + len(blob)] = blob
        return True

    def _load(self) -> Dict[Any, ShmRef]:
        buf = self._seg.buf
        n = int.from_bytes(bytes(buf[0:8]), "big")
        if n == 0:
            return {}
        return pickle.loads(bytes(buf[8:8 + n]))

    def lookup(self, key) -> Optional[ShmRef]:
        """The registered ref for ``key``, or None."""
        with self._lock:
            return self._load().get(key)

    def register(self, key, ref: ShmRef) -> Tuple[ShmRef, bool]:
        """Record ``ref`` under ``key``; first writer wins.

        Returns ``(winning ref, directory_owns)``.  When another process
        registered first, the caller gets *its* ref back and should
        discard the duplicate segment it just made.  ``directory_owns``
        is False when the directory is full — the caller then keeps
        local ownership (unlink-at-close) as if unshared.
        """
        with self._lock:
            table = self._load()
            cur = table.get(key)
            if cur is not None:
                return cur, True
            if len(table) >= self.max_entries:
                return ref, False
            table[key] = ref
            if not self._store(table):
                return ref, False
            return ref, True

    def registered_names(self) -> List[str]:
        with self._lock:
            return [ref[0] for ref in self._load().values()]

    def close(self, unlink_segments: bool = False) -> None:
        from multiprocessing import shared_memory

        if unlink_segments:
            for name in self.registered_names():
                try:
                    seg = shared_memory.SharedMemory(name=name)
                    seg.close()
                    seg.unlink()
                except FileNotFoundError:
                    pass
                except OSError:  # pragma: no cover
                    pass
        try:
            self._seg.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
        if unlink_segments:
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

# Worker-side cache of long-lived (table) segments: name -> (segment, view).
# Bounded (oldest evicted first); the publisher unlinks the name at close(),
# which on POSIX leaves existing mappings valid.
_WORKER_TABLES: Dict[str, Tuple[Any, np.ndarray]] = {}
_WORKER_TABLE_LIMIT = 32

# Set by the pool initializer: True when this worker shares the publisher's
# resource tracker (fork), False when it runs its own (spawn/forkserver).
_TRACKER_INHERITED = True


def _worker_init() -> None:
    global _TRACKER_INHERITED
    try:
        from multiprocessing import resource_tracker

        _TRACKER_INHERITED = (
            getattr(resource_tracker._resource_tracker, "_fd", None) is not None
        )
    except Exception:  # pragma: no cover
        _TRACKER_INHERITED = True


def _untrack(seg) -> None:
    """Undo the resource tracker's attach-side registration.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment with
    the resource tracker even when merely attaching.  Harmless when the
    tracker is shared with the publisher (fork: registration is idempotent
    and the publisher unregisters on unlink), but a worker with its *own*
    tracker (spawn) would "clean up" segments it does not own at exit — so
    only then do we unregister the attach.
    """
    if _TRACKER_INHERITED:
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _attach_view(ref: ShmRef):
    from multiprocessing import shared_memory

    name, shape, dtype = ref
    seg = shared_memory.SharedMemory(name=name)
    _untrack(seg)
    return seg, np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)


def _attach_table(ref: ShmRef) -> np.ndarray:
    name = ref[0]
    hit = _WORKER_TABLES.get(name)
    if hit is not None:
        return hit[1]
    while len(_WORKER_TABLES) >= _WORKER_TABLE_LIMIT:
        # FIFO eviction: unmap the oldest table (re-attached on next use).
        old_seg, old_view = _WORKER_TABLES.pop(next(iter(_WORKER_TABLES)))
        del old_view
        try:
            old_seg.close()
        except Exception:  # pragma: no cover
            pass
    seg, view = _attach_view(ref)
    _WORKER_TABLES[name] = (seg, view)
    return view


def _scan_shared_task(task) -> Any:
    """Worker entry point: one chunk scan against shared-memory views."""
    kind, table_ref, initial, classes_ref, a, b, kernel, accept_ref = task
    table = _attach_table(table_ref)
    accept = _attach_table(accept_ref) if accept_ref is not None else None
    seg, classes = _attach_view(classes_ref)
    try:
        out = run_scan(kind, table, initial, classes[a:b], kernel, accept)
        if isinstance(out, np.ndarray):
            out = np.array(out, copy=True)  # detach from the segment buffer
    finally:
        del classes
        try:
            seg.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
    return out


class ProcessExecutor(ChunkExecutor):
    """Run chunk scans on a persistent :mod:`multiprocessing` worker pool.

    This is the paper's pthread setup made real under CPython: each chunk
    scan runs in its own process, so the scalar Algorithm-5 loop uses one
    core per chunk instead of time-slicing one GIL.

    Transition tables are content-addressed and published to shared memory
    at most once per table; the class array of each :meth:`scan` call is
    published for the duration of the call and unlinked immediately after.
    Workers receive only ``(kind, table ref, initial, classes ref, a, b)``.

    ``fresh_workers=True`` builds (and tears down) the pool on every call —
    the cold mode of the Fig. 10 overhead study.  If process pools or shared
    memory cannot be set up on this platform, the executor degrades to
    serial in-process execution and records why in :attr:`fallback_reason`.
    """

    name = "processes"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        fresh_workers: bool = False,
        start_method: Optional[str] = None,
        directory: Optional[SegmentDirectory] = None,
    ):
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise MatchEngineError("need at least one worker")
        self.num_workers = num_workers
        self.fresh_workers = fresh_workers
        #: Optional cross-process SegmentDirectory: pre-fork service
        #: workers share one, so equal tables are published once across
        #: the whole worker fleet, not once per process.
        self._directory = directory
        #: Segment names owned by the directory, not this executor —
        #: closed locally but never unlinked here.
        self._directory_names: set = set()
        # One executor may be shared by many caller threads (the match
        # service dispatches handler threads onto a single warm pool), so
        # publication bookkeeping and pool creation are serialized; the
        # pool's own map() is thread-safe and runs outside the lock.
        self._lock = threading.Lock()
        self._pool = None
        self._ctx = None
        self._published: Dict[Tuple[str, Tuple[int, ...], str], Any] = {}
        self._refs: Dict[Tuple[str, Tuple[int, ...], str], ShmRef] = {}
        # id() fast path over the content hash: (weakref, ShmRef, content key)
        self._id_refs: Dict[int, Tuple[Any, ShmRef, Any]] = {}
        self.max_tables = 32  # FIFO-evict published tables beyond this
        self.fallback_reason: Optional[str] = None
        self._probe(start_method)

    # -- availability ---------------------------------------------------
    def _probe(self, start_method: Optional[str]) -> None:
        """Pick a start method and prove shared memory works, or record why not."""
        try:
            import multiprocessing
            from multiprocessing import shared_memory

            if start_method is None:
                methods = multiprocessing.get_all_start_methods()
                start_method = "fork" if "fork" in methods else methods[0]
            self._ctx = multiprocessing.get_context(start_method)
            seg = shared_memory.SharedMemory(create=True, size=8)
            seg.close()
            seg.unlink()
        except Exception as e:  # pragma: no cover - platform dependent
            self._ctx = None
            self.fallback_reason = f"{type(e).__name__}: {e}"

    @property
    def available(self) -> bool:
        """True when scans actually run on worker processes."""
        return self.fallback_reason is None

    # -- shared-memory publication --------------------------------------
    @staticmethod
    def _make_segment(arr: np.ndarray) -> Tuple[Any, ShmRef]:
        """Allocate a fresh shared-memory segment holding a copy of ``arr``."""
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes), name=f"repro_{secrets.token_hex(8)}"
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        del view
        return seg, (seg.name, arr.shape, arr.dtype.str)

    def _publish(self, arr: np.ndarray, transient: bool) -> Tuple[Any, ShmRef]:
        if transient:
            # The per-call class array touches no shared bookkeeping, so
            # its (potentially multi-MB) copy runs without the lock —
            # concurrent handler threads sharing one executor publish
            # their payloads in parallel.
            return self._make_segment(np.ascontiguousarray(arr))
        with self._lock:
            return self._publish_locked(arr)

    def _publish_locked(self, arr: np.ndarray) -> Tuple[Any, ShmRef]:
        source = arr
        arr = np.ascontiguousarray(arr)
        # id() fast path: the same table object (the usual case — an SFA
        # held by a CompiledPattern) skips the content hash entirely.
        hit = self._id_refs.get(id(source))
        if hit is not None and hit[0]() is source:
            seg = self._published.get(hit[2])
            if seg is not None:  # may have been FIFO-evicted
                return seg, hit[1]
        # Content-address long-lived tables so each is published once
        # even when equal tables arrive as distinct objects.
        key = (
            hashlib.sha1(arr.data if arr.nbytes else b"").hexdigest(),
            arr.shape,
            arr.dtype.str,
        )
        ref = self._refs.get(key)
        if ref is not None:
            self._remember_id(source, ref, key)
            return self._published[key], ref
        if self._directory is not None:
            # Another pre-fork worker may have published this table
            # already — attach its segment instead of copying again.
            dref = self._directory.lookup(key)
            if dref is not None:
                seg = self._attach_segment(dref)
                if seg is not None:
                    self._directory_names.add(dref[0])
                    return self._admit(key, seg, dref, source)
        seg, ref = self._make_segment(arr)
        if self._directory is not None:
            win, dir_owns = self._directory.register(key, ref)
            if win != ref:
                # Lost the publish race: discard our duplicate, attach
                # the winner's segment.
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                alt = self._attach_segment(win)
                if alt is not None:
                    seg, ref = alt, win
                    self._directory_names.add(ref[0])
                else:  # winner vanished mid-race; fall back to local
                    seg, ref = self._make_segment(arr)
            elif dir_owns:
                self._directory_names.add(ref[0])
        return self._admit(key, seg, ref, source)

    def _admit(self, key, seg, ref: ShmRef, source: np.ndarray):
        while len(self._published) >= self.max_tables:
            # FIFO eviction keeps a long-lived executor's /dev/shm
            # footprint bounded; an evicted table is republished (under
            # a new name) if it ever comes back.
            old_key = next(iter(self._published))
            old_seg = self._published.pop(old_key)
            self._refs.pop(old_key, None)
            self._release_segment(old_seg)
        self._published[key] = seg
        self._refs[key] = ref
        self._remember_id(source, ref, key)
        return seg, ref

    def _release_segment(self, seg) -> None:
        """Close a published segment; unlink only the ones we own."""
        name = seg.name
        seg.close()
        if name in self._directory_names:
            return  # the directory master unlinks at teardown
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    @staticmethod
    def _attach_segment(ref: ShmRef):
        from multiprocessing import shared_memory

        try:
            return shared_memory.SharedMemory(name=ref[0])
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            return None

    def _remember_id(self, source: np.ndarray, ref: ShmRef, key) -> None:
        # Freeze the table before trusting its identity: an id()-keyed hit
        # skips the content hash, so an in-place mutation after publish
        # would silently scan the stale shared-memory copy.  Read-only
        # arrays turn that into a loud ValueError at the mutation site;
        # arrays we cannot freeze are simply re-hashed on every call.
        try:
            source.flags.writeable = False
            wr = weakref.ref(source)
        except (ValueError, TypeError):
            return
        if len(self._id_refs) >= 4 * self.max_tables:
            self._id_refs.clear()  # tiny tuples; wholesale reset is fine
        self._id_refs[id(source)] = (wr, ref, key)

    def published_segment_names(self) -> List[str]:
        """Names of the live table segments (tests assert cleanup on these)."""
        return [seg.name for seg in self._published.values()]

    # -- execution -------------------------------------------------------
    def _get_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = self._ctx.Pool(
                    processes=self.num_workers, initializer=_worker_init
                )
            return self._pool

    @staticmethod
    def _identity_result(kind: str, table: np.ndarray, initial: int) -> Any:
        """Result of scanning an empty span: nothing moves."""
        if kind == "sfa":
            return int(initial)
        if kind == "transform":
            return np.arange(table.shape[0], dtype=np.int32)
        if kind == "mask":
            return np.zeros(0, dtype=np.bool_)
        raise MatchEngineError(f"unknown scan kind {kind!r}")

    def scan(
        self,
        kind: str,
        table: np.ndarray,
        initial,
        classes: np.ndarray,
        spans: Sequence[Tuple[int, int]],
        kernel: str = "python",
        accept: Optional[np.ndarray] = None,
    ) -> List[Any]:
        if not self.available:
            return super().scan(kind, table, initial, classes, spans, kernel,
                                accept)
        inits = _span_initials(initial, spans)
        # Empty spans (p > n splits) are resolved to identity results here
        # rather than shipped — an empty chunk scan is pure IPC overhead.
        live = [(i, a, b) for i, (a, b) in enumerate(spans) if b > a]
        results = [
            self._identity_result(kind, table, q) for q in inits
        ]
        if not live:
            return results
        _, table_ref = self._publish(table, transient=False)
        accept_ref = None
        if accept is not None:
            # Accept vectors are long-lived like tables (content-addressed,
            # published once) — they belong to the automaton, not the call.
            _, accept_ref = self._publish(accept, transient=False)
        cls_seg, cls_ref = self._publish(classes, transient=True)
        tasks = [
            (kind, table_ref, inits[i], cls_ref, a, b, kernel, accept_ref)
            for i, a, b in live
        ]
        try:
            if self.fresh_workers:
                with self._ctx.Pool(
                    processes=self.num_workers, initializer=_worker_init
                ) as pool:
                    out = pool.map(_scan_shared_task, tasks)
            else:
                out = self._get_pool().map(_scan_shared_task, tasks)
        except OSError as e:  # pragma: no cover - pool died (e.g. fork limit)
            self.fallback_reason = f"{type(e).__name__}: {e}"
            return super().scan(kind, table, initial, classes, spans, kernel,
                                accept)
        finally:
            cls_seg.close()
            try:
                cls_seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        for (i, _, _), res in zip(live, out):
            results[i] = res
        return results

    def map(self, fn: Callable[[np.ndarray], T], chunks: Sequence[np.ndarray]) -> List[T]:
        """Generic map; runs in-process when ``fn`` cannot cross processes.

        Closures over automata (the usual ``fn`` here) are not picklable, so
        this transparently degrades to serial; table scans should use
        :meth:`scan`, which never pickles the table.
        """
        if self.available:
            try:
                if self.fresh_workers:
                    with self._ctx.Pool(
                        processes=self.num_workers, initializer=_worker_init
                    ) as pool:
                        return pool.map(fn, list(chunks))
                return self._get_pool().map(fn, list(chunks))
            except (pickle.PicklingError, AttributeError, TypeError):
                pass
        return [fn(ch) for ch in chunks]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (draining in-flight work) and unlink every
        published segment."""
        with self._lock:
            pool, self._pool = self._pool, None
            published = list(self._published.values())
            self._published.clear()
            self._refs.clear()
            self._id_refs.clear()
        if pool is not None:
            pool.close()
            pool.join()  # graceful drain: running chunk scans finish
        for seg in published:
            self._release_segment(seg)

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Factory + shared registry
# ---------------------------------------------------------------------------

EXECUTOR_NAMES = ("serial", "threads", "processes")


def make_executor(
    name: str,
    num_workers: Optional[int] = None,
    directory: Optional[SegmentDirectory] = None,
) -> ChunkExecutor:
    """Build a fresh executor by backend name (caller owns its lifetime).

    ``directory`` (process backend only) plugs the executor into a
    pre-fork :class:`SegmentDirectory` so table publications are shared
    across sibling worker processes.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadExecutor(num_workers or (os.cpu_count() or 1))
    if name == "processes":
        return ProcessExecutor(num_workers, directory=directory)
    raise MatchEngineError(
        f"unknown executor {name!r} (choose from {', '.join(EXECUTOR_NAMES)})"
    )


_SHARED: Dict[Tuple[str, Optional[int]], ChunkExecutor] = {}
_SHARED_LOCK = threading.Lock()


def get_shared_executor(name: str, num_workers: Optional[int] = None) -> ChunkExecutor:
    """Process-wide executor cache, so repeated ``fullmatch`` calls hit a
    warm pool instead of paying pool/shared-memory setup per call.

    Thread-safe (concurrent first calls build one executor, not two);
    cached executors are closed automatically at interpreter exit.
    """
    key = (name, num_workers)
    with _SHARED_LOCK:
        ex = _SHARED.get(key)
        if ex is None:
            ex = make_executor(name, num_workers)
            _SHARED[key] = ex
        return ex


def resolve_executor(
    executor, num_workers: Optional[int] = None
) -> Optional[ChunkExecutor]:
    """Normalize an ``executor=`` argument: None, backend name, or instance."""
    if executor is None:
        return None
    if isinstance(executor, str):
        return get_shared_executor(executor, num_workers)
    if isinstance(executor, ChunkExecutor):
        return executor
    raise MatchEngineError(f"not an executor: {executor!r}")


@atexit.register
def _close_shared_executors() -> None:  # pragma: no cover - exit path
    for ex in _SHARED.values():
        try:
            ex.close()
        except Exception:
            pass
    _SHARED.clear()
