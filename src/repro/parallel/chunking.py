"""Input chunking for data-parallel scans.

Theorem 3 lets the input be divided at *any* points; these helpers produce
balanced contiguous chunks.  Balance matters because parallel wall time is
the max over chunks (plus reduction).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import MatchEngineError


def split_balanced(n: int, p: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``p`` contiguous spans differing by ≤ 1.

    The first ``n % p`` spans get the extra element.  Always returns ``p``
    spans (possibly empty when ``p > n``).
    """
    if p < 1:
        raise MatchEngineError("need at least one chunk")
    base, extra = divmod(n, p)
    spans = []
    start = 0
    for i in range(p):
        length = base + (1 if i < extra else 0)
        spans.append((start, start + length))
        start += length
    return spans


def clamp_chunks(n: int, p: int) -> int:
    """Effective chunk count for an ``n``-symbol input: ``max(1, min(p, n))``.

    With ``p > n`` balanced splitting yields empty spans that are pure
    dispatch overhead (and a degenerate ``m == 0`` lockstep block); the
    chunked engines clamp with this before splitting, so no more than one
    chunk per symbol is ever shipped.
    """
    if p < 1:
        raise MatchEngineError("need at least one chunk")
    return max(1, min(p, n))


def split_classes(classes: np.ndarray, p: int) -> List[np.ndarray]:
    """Split a class-index array into ``p`` balanced contiguous views."""
    return [classes[a:b] for a, b in split_balanced(len(classes), p)]


def lockstep_layout(classes: np.ndarray, p: int) -> Tuple[np.ndarray, np.ndarray]:
    """Reshape for lockstep scanning: equal-length chunk block + tail.

    Returns ``(block, tail)`` where ``block`` has shape ``(m, p)`` —
    ``block[j, i]`` is position ``j`` of chunk ``i`` (position-major so each
    lockstep step reads one contiguous row) — and ``tail`` is the leftover
    ``n % p`` symbols appended to the *last* chunk after the block.
    """
    if p < 1:
        raise MatchEngineError("need at least one chunk")
    n = len(classes)
    m = n // p
    body = classes[: m * p]
    tail = classes[m * p :]
    block = np.ascontiguousarray(body.reshape(p, m).T)
    return block, tail
