"""Parallel substrate: chunking, executors, reductions, machine + cache sim.

The paper's testbed (dual hexa-core Xeon, pthreads) is reproduced three
ways, documented in DESIGN.md §3:

* true multicore chunk-parallel execution on a
  :class:`~repro.parallel.executor.ProcessExecutor` worker pool with the
  transition tables in :mod:`multiprocessing.shared_memory`,
* chunk-parallel execution inside one process (lockstep vectorization,
  plus a thread-pool executor for free-threaded builds), and
* a :class:`~repro.parallel.simulator.SimulatedMachine` whose per-access
  costs come from a set-associative LRU cache model sized like the paper's
  CPU — used to regenerate the thread-count axes of Figs. 6–10.
"""

from repro.parallel.chunking import clamp_chunks, split_balanced, split_classes
from repro.parallel.executor import (
    ChunkExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_shared_executor,
    make_executor,
    resolve_executor,
)
from repro.parallel.scan import (
    KERNELS,
    run_scan,
    sfa_scan,
    sfa_scan_vector,
    transform_scan,
    transform_scan_vector,
)
from repro.parallel.reduction import (
    sequential_reduction_dsfa,
    sequential_reduction_nsfa,
    tree_reduction_transformations,
)
from repro.parallel.cache import AnalyticCacheModel, CacheHierarchy, CacheLevel
from repro.parallel.simulator import MachineConfig, SimulatedMachine

__all__ = [
    "AnalyticCacheModel",
    "CacheHierarchy",
    "CacheLevel",
    "ChunkExecutor",
    "KERNELS",
    "MachineConfig",
    "ProcessExecutor",
    "SerialExecutor",
    "SimulatedMachine",
    "ThreadExecutor",
    "clamp_chunks",
    "get_shared_executor",
    "make_executor",
    "resolve_executor",
    "run_scan",
    "sequential_reduction_dsfa",
    "sequential_reduction_nsfa",
    "sfa_scan",
    "sfa_scan_vector",
    "split_balanced",
    "split_classes",
    "transform_scan",
    "transform_scan_vector",
    "tree_reduction_transformations",
]
