"""Parallel substrate: chunking, executors, reductions, machine + cache sim.

The paper's testbed (dual hexa-core Xeon, pthreads) is replaced by two
substitutes documented in DESIGN.md §3:

* real chunk-parallel execution inside one process (lockstep vectorization,
  plus an optional thread-pool executor), and
* a :class:`~repro.parallel.simulator.SimulatedMachine` whose per-access
  costs come from a set-associative LRU cache model sized like the paper's
  CPU — used to regenerate the thread-count axes of Figs. 6–10.
"""

from repro.parallel.chunking import split_balanced, split_classes
from repro.parallel.executor import ChunkExecutor, SerialExecutor, ThreadExecutor
from repro.parallel.reduction import (
    sequential_reduction_dsfa,
    sequential_reduction_nsfa,
    tree_reduction_transformations,
)
from repro.parallel.cache import AnalyticCacheModel, CacheHierarchy, CacheLevel
from repro.parallel.simulator import MachineConfig, SimulatedMachine

__all__ = [
    "AnalyticCacheModel",
    "CacheHierarchy",
    "CacheLevel",
    "ChunkExecutor",
    "MachineConfig",
    "SerialExecutor",
    "SimulatedMachine",
    "ThreadExecutor",
    "sequential_reduction_dsfa",
    "sequential_reduction_nsfa",
    "split_balanced",
    "split_classes",
    "tree_reduction_transformations",
]
