"""Reductions of per-chunk results (paper Algorithm 5 lines 6–9).

Two strategies, matching the paper's two columns:

* **sequential reduction** — start from the original automaton's initial
  state and *apply* each chunk mapping in order.  ``O(p)`` for a D-SFA
  (one array pick per chunk) and ``O(|N|·p)`` for an N-SFA (one boolean
  vector-matrix product per chunk).  This never composes mappings.
* **tree (parallel) reduction** — compose the mappings pairwise with the
  associative ``⊙``; each composition costs ``O(|D|)`` (transformation
  gather) or ``O(|N|³)`` (boolean matrix product).  The tree shape is what
  a ``log p``-depth parallel machine would execute.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import MatchEngineError


def sequential_reduction_dsfa(
    maps: np.ndarray, chunk_states: Sequence[int], initial: int
) -> int:
    """Walk ``initial`` through the chunk transformations; return the state.

    ``maps`` is the D-SFA payload ``(num_sfa_states, n)``; ``chunk_states``
    are SFA state indices reached per chunk, in input order.
    """
    q = initial
    for f in chunk_states:
        q = int(maps[f, q])
    return q


def sequential_reduction_nsfa(
    maps: np.ndarray, chunk_states: Sequence[int], initial_states: Sequence[int]
) -> np.ndarray:
    """N-SFA sequential reduction; returns the final boolean state-set row."""
    n = maps.shape[1]
    row = np.zeros(n, dtype=bool)
    for q in initial_states:
        row[q] = True
    for f in chunk_states:
        row = (row.astype(np.uint8) @ maps[f].astype(np.uint8)) > 0
    return row


def tree_reduction_transformations(parts: List[np.ndarray]) -> np.ndarray:
    """Balanced-tree ``⊙``-reduction of transformation vectors.

    Associativity (function composition) makes any tree shape equivalent;
    we reduce pairwise level by level, the shape a parallel reduction would
    take.  Work ``O(|D|·(p-1))``, span ``O(|D|·log p)``.
    """
    if not parts:
        raise MatchEngineError("nothing to reduce")
    level = list(parts)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            nxt.append(right[left])  # apply left first, then right
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def tree_reduction_boolean(parts: List[np.ndarray]) -> np.ndarray:
    """Balanced-tree reduction of boolean correspondence matrices.

    Each node is a boolean matrix product — the ``O(|N|³)`` ``⊙`` of
    Table II's N-SFA parallel-reduction row.
    """
    if not parts:
        raise MatchEngineError("nothing to reduce")
    level = [p.astype(np.uint8) for p in parts]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(((level[i] @ level[i + 1]) > 0).astype(np.uint8))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0] > 0
