"""Cache-hierarchy models for the throughput studies (Figs. 6–10).

The paper's cache argument (Sect. VI-B) is: each matcher thread makes one
4-byte load per input character into a transition table laid out as 1 KB
rows (256 symbols × 4 bytes); when the set of table lines a run actually
touches exceeds a cache level, per-access latency jumps and throughput
collapses — that is the whole difference between Fig. 7 and Fig. 8, and
Fig. 9 shows a huge table that still flies because the run touches a single
row.

Two models:

* :class:`CacheHierarchy` — a faithful set-associative LRU simulator fed a
  line-address stream (used on real, measured traces in tests/benches).
* :class:`AnalyticCacheModel` — closed-form expected latency from a
  working-set size; used where streaming a 1 GB trace through a Python LRU
  would be absurd.  Cross-checked against the LRU simulator in tests.

Default geometry = the paper's Xeon E5645: 32 KB L1d (8-way), 256 KB L2
(8-way), 12 MB shared L3 (16-way), 64 B lines; latencies in cycles are the
usual Nehalem/Westmere figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError


@dataclass
class CacheLevel:
    """One set-associative LRU cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_cycles: float
    name: str = "L?"
    #: shared caches (the Xeon's L3) are split among concurrent threads in
    #: the analytic model; private levels (L1/L2) are per-core.
    shared: bool = False

    def __post_init__(self) -> None:
        self.num_sets = self.size_bytes // (self.assoc * self.line_bytes)
        if self.num_sets < 1:
            raise SimulationError(f"{self.name}: fewer than one set")
        # sets[s] = list of tags, most-recently-used last.  Real L3s have
        # non-power-of-two set counts (12 MB / 16-way / 64 B = 12288 sets);
        # we index with modulo, which is what the hardware hash amounts to
        # for our purposes.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    def lookup(self, line_addr: int) -> bool:
        """Access one line; returns hit/miss and updates LRU state."""
        s = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        ways = self._sets[s]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    @property
    def capacity_lines(self) -> int:
        return self.size_bytes // self.line_bytes


def xeon_e5645_levels() -> List[CacheLevel]:
    """The paper machine's hierarchy (per-core L1/L2, shared L3)."""
    return [
        CacheLevel(32 * 1024, 8, 64, hit_cycles=4.0, name="L1d"),
        CacheLevel(256 * 1024, 8, 64, hit_cycles=10.0, name="L2"),
        CacheLevel(12 * 1024 * 1024, 16, 64, hit_cycles=40.0, name="L3", shared=True),
    ]


MEMORY_CYCLES = 200.0  # DRAM access cost on the paper machine (cycles)


class CacheHierarchy:
    """Inclusive multi-level LRU cache simulator.

    ``access(byte_addr)`` returns the latency in cycles of one load and
    updates all levels.  ``access_stream`` amortizes the Python overhead
    over a NumPy address array and returns total cycles plus per-level hit
    counts.
    """

    def __init__(self, levels: Sequence[CacheLevel] | None = None,
                 memory_cycles: float = MEMORY_CYCLES):
        self.levels = list(levels) if levels is not None else xeon_e5645_levels()
        if not self.levels:
            raise SimulationError("need at least one cache level")
        self.memory_cycles = memory_cycles
        self.line_bytes = self.levels[0].line_bytes
        self.hits = [0] * len(self.levels)
        self.misses = 0

    def reset(self) -> None:
        for lv in self.levels:
            lv.reset()
        self.hits = [0] * len(self.levels)
        self.misses = 0

    def access(self, byte_addr: int) -> float:
        line = byte_addr // self.line_bytes
        for i, lv in enumerate(self.levels):
            if lv.lookup(line):
                self.hits[i] += 1
                return lv.hit_cycles
        self.misses += 1
        return self.memory_cycles

    def access_stream(self, byte_addrs: np.ndarray) -> float:
        """Total cycles for a stream of byte addresses."""
        total = 0.0
        for a in (np.asarray(byte_addrs, dtype=np.int64) // self.line_bytes).tolist():
            total += self._access_line(a)
        return total

    def _access_line(self, line: int) -> float:
        for i, lv in enumerate(self.levels):
            if lv.lookup(line):
                self.hits[i] += 1
                return lv.hit_cycles
        self.misses += 1
        return self.memory_cycles

    def stats(self) -> Dict[str, int]:
        out = {lv.name: h for lv, h in zip(self.levels, self.hits)}
        out["memory"] = self.misses
        return out


@dataclass
class AnalyticCacheModel:
    """Closed-form expected per-access latency from a working-set size.

    Steady-state approximation for uniformly re-referenced working sets:
    a working set of ``W`` lines inside a level with capacity ``C`` lines
    hits with probability ``min(1, C/W)`` (fully resident ⇒ always hits;
    twice the capacity ⇒ roughly half the accesses hit under LRU with
    near-uniform reuse).  Levels filter: accesses that miss level ``i``
    proceed to level ``i+1`` whose *effective* capacity still counts,
    because the hierarchy is inclusive.

    A TLB term models the second mechanism behind the paper's r_500
    collapse (Fig. 8): with 1 KB rows scattered across a 1 GB table, the
    ~2n hot rows of a chunk scan live on more 4 KB pages than the STLB
    covers, so nearly every lookup adds a page walk.  ``pages`` (the
    number of distinct pages a run touches) activates the term; the r_50
    case (~2n = 200 pages < 512 STLB entries) pays nothing, which is
    exactly why Fig. 7 scales and Fig. 8 does not.

    This matches the LRU simulator within a few percent on cyclic and
    uniform traces (see ``tests/test_cache_model.py``) and is exact in the
    two regimes that matter for the figures: fits (all hits) and vastly
    exceeds (all misses).
    """

    levels: List[CacheLevel] = field(default_factory=xeon_e5645_levels)
    memory_cycles: float = MEMORY_CYCLES
    #: second-level TLB entries (Westmere STLB: 512 × 4 KB pages)
    tlb_entries: int = 512
    page_bytes: int = 4096
    #: page-walk cost once the hot pages thrash the STLB (walk plus
    #: page-walk-cache misses when the page tables themselves fall out)
    tlb_miss_cycles: float = 150.0

    def expected_cycles(
        self,
        working_set_bytes: float,
        sharers: int = 1,
        pages: Optional[float] = None,
    ) -> float:
        """Expected latency of one load over a working set of given size.

        ``sharers`` is the number of threads concurrently streaming through
        shared levels (the Xeon's L3): each effectively owns ``1/sharers``
        of a shared level's capacity.  Private levels are unaffected.

        ``pages`` is the count of distinct 4 KB pages the run touches; it
        defaults to ``working_set_bytes / page_bytes`` (dense layout).  For
        hot rows *scattered* across a huge table (the SFA case) pass the
        visited-row count instead — that is what thrashes the TLB.
        """
        if working_set_bytes <= 0:
            return self.levels[0].hit_cycles
        line = self.levels[0].line_bytes
        w_lines = max(1.0, working_set_bytes / line)
        remaining = 1.0  # probability the access reaches this level
        expected = 0.0
        for lv in self.levels:
            cap = lv.capacity_lines / (sharers if lv.shared else 1)
            p_hit = min(1.0, cap / w_lines)
            expected += remaining * p_hit * lv.hit_cycles
            remaining *= 1.0 - p_hit
        expected += remaining * self.memory_cycles
        if pages is None:
            pages = working_set_bytes / self.page_bytes
        expected += self.tlb_cycles(pages)
        return expected

    def tlb_cycles(self, pages: float) -> float:
        """Expected page-walk cycles per access for ``pages`` hot pages.

        Page walks are dependent loads — unlike cache misses they do not
        overlap with neighbouring accesses, which is why the machine model
        accounts them outside the memory-level-parallelism divisor.
        """
        if pages <= self.tlb_entries:
            return 0.0
        miss = 1.0 - self.tlb_entries / pages
        return miss * self.tlb_miss_cycles

    def throughput_gbps(self, working_set_bytes: float, clock_ghz: float = 2.4) -> float:
        """Bytes/ns for a 1-load-per-byte scan with this working set."""
        return clock_ghz / self.expected_cycles(working_set_bytes)


def table_working_set_bytes(
    visited_states: int,
    distinct_classes: int,
    row_bytes: int = 1024,
    line_bytes: int = 64,
    full_rows: bool = False,
) -> int:
    """Bytes of transition table actually touched by a run.

    ``visited_states`` distinct rows × the cache lines covering the
    ``distinct_classes`` symbol columns read in each row.  With the paper's
    1 KB rows a column lands in one 64 B line, and columns of symbols in
    the same byte class usually share lines.

    ``full_rows=True`` charges the whole row per visited state — the
    *effective* footprint on real hardware, where adjacent-line prefetch
    and set conflicts pull in row neighbourhoods.  This variant matches
    the paper's measured DFA baselines across r_5/r_50/r_500
    (1.1 / 0.55 / 0.33 GB/s track 10 KB / 100 KB / 1 MB row footprints).
    """
    if full_rows:
        return visited_states * row_bytes
    max_lines_per_row = max(1, row_bytes // line_bytes)
    lines_per_row = max(1, min(distinct_classes, max_lines_per_row))
    return visited_states * lines_per_row * line_bytes
