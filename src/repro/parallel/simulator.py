"""Simulated parallel machine (the paper-testbed substitute, DESIGN.md §3).

Models the wall-clock time of each matching algorithm on a ``p``-thread
machine with the paper's clock and cache hierarchy:

* per-thread scan cost = chars × (loop cycles + expected table-load latency
  from the cache model, divided by a memory-level-parallelism factor — the
  out-of-order core overlaps consecutive loads);
* L1/L2 are private per core; the 12 MB L3 is shared among active threads;
* thread management cost per run (the overhead Fig. 10 measures);
* reduction cost: sequential ``O(p)`` or tree ``O(c·log₂ p)``.

The model intentionally contains nothing engine-specific beyond Table II's
per-character access counts, so the *shape* of Figs. 6–10 follows from the
same two inputs the paper identifies: table working set vs cache capacity,
and lookups per character (1 for DFA/SFA, ``|D|`` for speculative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.parallel.cache import AnalyticCacheModel


@dataclass
class MachineConfig:
    """Machine parameters; defaults model the paper's 2×Xeon E5645 box."""

    clock_ghz: float = 2.4
    num_cores: int = 12
    #: non-memory cycles per scanned character (loop + classmap + branch)
    scan_overhead_cycles: float = 1.0
    #: loads overlapped by the out-of-order core + adjacent-line prefetch
    #: (memory-level parallelism of a table-scan loop)
    latency_overlap: float = 4.0
    #: one-off cycles to create, schedule and join one worker thread
    #: (Fig. 10's overhead; ~125 µs at 2.4 GHz — pthread_create/join plus
    #: the scheduling interference the paper observes on small inputs)
    thread_spawn_cycles: float = 300_000.0
    #: cycles per sequential-reduction step (one mapping application)
    seq_reduce_cycles: float = 300.0
    cache: AnalyticCacheModel = field(default_factory=AnalyticCacheModel)

    def seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)

    def per_char_cycles(
        self, working_set_bytes: float, sharers: int = 1, pages: float | None = None
    ) -> float:
        """Effective cycles for one scan step with one table load.

        Cache latency is divided by the MLP overlap factor; page-walk
        latency is not (walks are dependent loads and serialize).
        """
        if pages is None:
            pages = working_set_bytes / self.cache.page_bytes
        lat = self.cache.expected_cycles(working_set_bytes, sharers, pages=0)
        walk = self.cache.tlb_cycles(pages)
        return self.scan_overhead_cycles + lat / self.latency_overlap + walk


@dataclass
class SimResult:
    """Simulated timing of one run."""

    seconds: float
    cycles: float
    throughput_gbps: float
    breakdown: Dict[str, float]


class SimulatedMachine:
    """Evaluates the Table II cost formulas on a concrete machine model."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()

    # -- engines -----------------------------------------------------------
    def dfa_sequential(
        self, n_chars: int, working_set_bytes: float, pages: float | None = None
    ) -> SimResult:
        """Algorithm 2: ``O(n)``, one load per char, single thread."""
        c = self.config
        cycles = n_chars * c.per_char_cycles(working_set_bytes, sharers=1, pages=pages)
        return self._result(n_chars, cycles, {"scan": cycles})

    def sfa_parallel(
        self,
        n_chars: int,
        p: int,
        working_set_bytes_per_thread: float,
        reduction: str = "sequential",
        sfa_compose_cycles: float = 0.0,
        pages_per_thread: float | None = None,
    ) -> SimResult:
        """Algorithm 5: ``O(n/p + p)`` / ``O(n/p + c·log p)``.

        ``working_set_bytes_per_thread`` is what *one* chunk scan touches;
        active threads contend for the shared L3 only.  When ``p`` exceeds
        the core count, chunk scans are serialized in waves.
        ``pages_per_thread`` is the scattered-page count for the TLB term
        (≈ distinct SFA rows visited, under the paper's 1 KB-row layout).
        """
        c = self.config
        if p < 1:
            raise SimulationError("p must be >= 1")
        active = min(p, c.num_cores)
        per_char = c.per_char_cycles(
            working_set_bytes_per_thread, sharers=active, pages=pages_per_thread
        )
        scan = ceil(n_chars / p) * per_char * ceil(p / active)
        spawn = p * c.thread_spawn_cycles
        if reduction == "sequential":
            reduce_cycles = p * c.seq_reduce_cycles
        elif reduction == "tree":
            if sfa_compose_cycles <= 0:
                raise SimulationError("tree reduction needs sfa_compose_cycles")
            reduce_cycles = sfa_compose_cycles * max(1.0, log2(max(2, p)))
        else:
            raise SimulationError(f"unknown reduction {reduction!r}")
        cycles = scan + spawn + reduce_cycles
        return self._result(
            n_chars,
            cycles,
            {"scan": scan, "spawn": spawn, "reduce": reduce_cycles},
        )

    def speculative_parallel(
        self,
        n_chars: int,
        p: int,
        dfa_size: int,
        working_set_bytes: float,
        reduction: str = "sequential",
    ) -> SimResult:
        """Algorithm 3: ``O(|D|·n/p + …)`` — |D| loads per char per thread.

        The all-states vector update is a tight gather, so per-state loop
        overhead is lower than the scalar scan's; latency still applies per
        load.
        """
        c = self.config
        if p < 1:
            raise SimulationError("p must be >= 1")
        active = min(p, c.num_cores)
        lat = c.cache.expected_cycles(working_set_bytes, sharers=active)
        per_char = dfa_size * (0.25 * c.scan_overhead_cycles + lat / c.latency_overlap)
        scan = ceil(n_chars / p) * per_char * ceil(p / active)
        spawn = p * c.thread_spawn_cycles
        if reduction == "sequential":
            reduce_cycles = p * c.seq_reduce_cycles
        else:
            reduce_cycles = dfa_size * c.seq_reduce_cycles * max(1.0, log2(max(2, p)))
        cycles = scan + spawn + reduce_cycles
        return self._result(
            n_chars, cycles, {"scan": scan, "spawn": spawn, "reduce": reduce_cycles}
        )

    # -- helpers -------------------------------------------------------------
    def _result(self, n_chars: int, cycles: float, breakdown: Dict[str, float]) -> SimResult:
        secs = self.config.seconds(cycles)
        gbps = (n_chars / 1e9) / secs if secs > 0 else float("inf")
        return SimResult(
            seconds=secs, cycles=cycles, throughput_gbps=gbps, breakdown=breakdown
        )

    def speedup_curve(
        self,
        n_chars: int,
        working_set_bytes_per_thread: float,
        dfa_working_set_bytes: float,
        max_threads: int = 12,
        reduction: str = "sequential",
        sfa_pages_per_thread: float | None = None,
        dfa_pages: float | None = None,
    ) -> Dict[int, float]:
        """Fig. 6–8 series: throughput (GB/s) for p = 1..max_threads.

        By the paper's convention the 1-thread point is the *sequential DFA*
        (not a 1-chunk SFA run).
        """
        base = self.dfa_sequential(n_chars, dfa_working_set_bytes, pages=dfa_pages)
        out = {1: base.throughput_gbps}
        for p in range(2, max_threads + 1):
            r = self.sfa_parallel(
                n_chars,
                p,
                working_set_bytes_per_thread,
                reduction=reduction,
                pages_per_thread=sfa_pages_per_thread,
            )
            out[p] = r.throughput_gbps
        return out
