"""Table-scan kernels shared by every executor backend.

These are the per-chunk inner loops of Algorithms 3 and 5 factored into a
plain module so that worker *processes* can run them: a process pool cannot
pickle the closures that :mod:`repro.matching` builds around an automaton,
but it can ship ``(kernel name, shared-memory reference, span)`` triples and
let the worker import the kernel by name and run it against a zero-copy
view of the table (DESIGN.md §3.4).

Two scan *kinds* cover every chunked engine:

* ``"sfa"`` — Algorithm 5 chunk scan: walk *one* state through the chunk,
  one table lookup per character; returns the reached state index.
* ``"transform"`` — Algorithm 3 chunk scan: simulate *all* states at once;
  returns the transformation vector.
* ``"mask"`` — the span engine's per-position pass (DESIGN.md §3.7): walk
  one state and record the accept bit *after every symbol*; returns a
  boolean array.  Needs the automaton's ``accept`` vector alongside the
  table, so the scan protocol carries an optional ``accept`` operand.

Each kind can run under two scan *shapes* (DESIGN.md §3.5):

* ``"python"`` — the reference per-symbol loop.
* ``"vector"`` — block-composed: per-block mappings are built with chained
  ``np.take_along_axis`` over the per-symbol transformation columns and
  tree-reduced with the associative ``right[left]`` composition, replacing
  the per-character Python loop with ``O(block + log(n/block))`` NumPy ops.

The multi-stride kernels (``"stride2"``/``"stride4"``) are not separate
scan shapes: the engine swaps in a precomposed superalphabet table
(:mod:`repro.automata.stride`) and packs the symbol stream
(:func:`repro.regex.charclass.pack_stride`), then dispatches one of the
shapes above over ``n/stride`` symbols — so workers need no stride logic.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Dict, Tuple, Union

import numpy as np

from repro.errors import MatchEngineError

#: Kernel knob values accepted by the engines (and threaded down here).
KERNELS = ("python", "stride2", "stride4", "vector")

SCAN_KINDS = ("sfa", "transform", "mask")

# ---------------------------------------------------------------------------
# Per-table derived-view caches
# ---------------------------------------------------------------------------

# Rebuilding the flattened lookup list (or the transposed column array) on
# every chunk call is an O(|Q|·k) tax repeated in every warm worker; cache
# them keyed on the table's identity — which, for shared-memory tables, is
# the per-segment view the worker's attachment cache keeps stable.  Cached
# tables are frozen (writeable=False) so an in-place mutation after caching
# fails loudly instead of silently scanning a stale derived view — the same
# contract ProcessExecutor applies to published tables.  Eviction is FIFO
# and bounded both by entry count and by total table entries (a boxed-int
# list costs ~9× the table bytes, so the byte cap matters for stride
# tables near their 4 MiB budget).
_DERIVED_LIMIT = 64
_DERIVED_ENTRY_BUDGET = 8_000_000  # total cached table entries across views
_CACHE_LOCK = threading.Lock()
_FLAT_CACHE: Dict[int, Tuple[Any, list, int]] = {}
_COLS_CACHE: Dict[int, Tuple[Any, np.ndarray, int]] = {}


def _cached_view(cache: Dict[int, Tuple[Any, Any, int]], table: np.ndarray, build: Callable):
    key = id(table)
    hit = cache.get(key)
    if hit is not None and hit[0]() is table:
        return hit[1]
    value = build(table)
    try:
        table.flags.writeable = False
        wr = weakref.ref(table)
    except (ValueError, TypeError):  # pragma: no cover - exotic array subclass
        return value  # cannot pin identity safely; rebuild per call
    size = int(table.size)
    with _CACHE_LOCK:  # ThreadExecutor workers share these caches
        while cache and (
            len(cache) >= _DERIVED_LIMIT
            or sum(e[2] for e in cache.values()) + size > _DERIVED_ENTRY_BUDGET
        ):
            cache.pop(next(iter(cache)), None)
        cache[key] = (wr, value, size)
    return value


def _scaled_flat(table: np.ndarray) -> list:
    """The table as a flat Python list with entries pre-scaled by the width.

    With ``flat[i] = table.flat[i] * k`` the walk keeps its state scaled
    (``f == state * k``) and each step is a single add + lookup,
    ``f = flat[f + c]`` — one fewer int allocation per symbol than
    ``flat[f * k + c]``, which is the loop's dominant cost.  Scaling is
    done in int64 so huge tables cannot overflow int32.
    """
    return _cached_view(
        _FLAT_CACHE,
        table,
        lambda t: (t.ravel().astype(np.int64) * t.shape[1]).tolist(),
    )


def _symbol_iter(classes: np.ndarray):
    """Cheapest per-symbol iterable: bytes for ``uint8`` streams.

    ``tobytes`` is one memcpy and iterating bytes yields interned small
    ints, where ``tolist`` materializes a list object per element first.
    """
    if classes.dtype == np.uint8:
        return classes.tobytes()
    return classes.tolist()


def table_columns(table: np.ndarray) -> np.ndarray:
    """Per-class transformation columns ``(k, n)``, cached per table."""
    return _cached_view(_COLS_CACHE, table, lambda t: np.ascontiguousarray(t.T))


# Accept vectors expanded to the scaled-state domain: acc[q * k] = accept[q]
# (intermediate offsets are never indexed — the walk only lands on
# multiples of k).  Keyed on (accept identity, width) since the same accept
# vector may pair with tables of different widths (base vs stride tables
# share |Q| but not k).
_ACC_CACHE: Dict[Tuple[int, int], Tuple[Any, bytes]] = {}


def _accept_flat(accept: np.ndarray, k: int) -> bytes:
    key = (id(accept), k)
    hit = _ACC_CACHE.get(key)
    if hit is not None and hit[0]() is accept:
        return hit[1]
    value = np.repeat(np.asarray(accept, dtype=np.uint8), k).tobytes()
    try:
        accept.flags.writeable = False
        wr = weakref.ref(accept)
    except (ValueError, TypeError, AttributeError):
        return value  # cannot pin identity safely; rebuild per call
    with _CACHE_LOCK:
        while len(_ACC_CACHE) >= _DERIVED_LIMIT:
            _ACC_CACHE.pop(next(iter(_ACC_CACHE)), None)
        _ACC_CACHE[key] = (wr, value)
    return value


# ---------------------------------------------------------------------------
# Reference (python) kernels
# ---------------------------------------------------------------------------


def sfa_scan(table: np.ndarray, initial: int, classes: np.ndarray) -> int:
    """Walk one automaton state through ``classes`` (Algorithm 5 lines 1-5).

    The flattened lookup list is cached per table (rebuilding it on every
    chunk call was an O(|Q|·k) tax repeated in every warm worker) and
    pre-scaled so the loop body is one add + one list pick per symbol.
    """
    k = table.shape[1]
    flat = _scaled_flat(table)
    f = int(initial) * k
    for c in _symbol_iter(classes):
        f = flat[f + c]
    return f // k


def _accept_suffix_threshold(accept: np.ndarray) -> int:
    """``thr`` if accepting states are exactly indices ``thr..n-1``, else -1.

    The span engine renumbers its private automata into this layout
    (:func:`repro.matching.spans.accept_last`) so the mask scan's accept
    test is one int comparison on a rarely-taken branch instead of a
    lookup + store per symbol (~1.7× on grep-shaped inputs).
    """
    n = len(accept)
    thr = n - int(np.count_nonzero(accept))
    if accept[thr:].all() and not accept[:thr].any():
        return thr
    return -1


def mask_scan(
    table: np.ndarray, accept: np.ndarray, initial: int, classes: np.ndarray
) -> np.ndarray:
    """Single-state walk recording the accept bit after every symbol.

    Returns ``out`` with ``out[j] = accept[state after classes[0..j]]``.
    This is the span engine's start/alive pass (DESIGN.md §3.7): run over a
    *reversed* input with the reversed-pattern automaton, ``out`` marks the
    positions where a match begins.  Inherently scalar — the bit at every
    position is demanded, so the stride kernels (which skip positions)
    cannot apply.  When the automaton is renumbered accepting-last the
    loop body is one list pick plus one int compare per symbol; otherwise
    it falls back to a per-symbol accept-table lookup.
    """
    k = table.shape[1]
    flat = _scaled_flat(table)
    f = int(initial) * k
    thr = _accept_suffix_threshold(accept)
    if thr == 0:  # every state accepts
        return np.ones(len(classes), dtype=np.bool_)
    if thr == len(accept):  # no state accepts
        return np.zeros(len(classes), dtype=np.bool_)
    if thr > 0:
        scaled_thr = thr * k
        hits: list = []
        append = hits.append
        for i, c in enumerate(_symbol_iter(classes)):
            f = flat[f + c]
            if f >= scaled_thr:
                append(i)
        out = np.zeros(len(classes), dtype=np.bool_)
        if hits:
            out[hits] = True
        return out
    acc = _accept_flat(accept, k)
    out_b = bytearray(len(classes))
    for i, c in enumerate(_symbol_iter(classes)):
        f = flat[f + c]
        out_b[i] = acc[f]
    return np.frombuffer(bytes(out_b), dtype=np.bool_)


def transform_scan(table: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Simulate transitions from all states over ``classes`` (Algorithm 3).

    Returns the transformation vector ``T`` with ``T[q]`` = state reached
    from ``q`` after the chunk; one vectorized gather per character.
    """
    n, k = table.shape
    flat = table.ravel()
    t = np.arange(n, dtype=np.int32)
    for c in classes.tolist():
        # T[q] <- δ(T[q], c) for all q at once
        t = flat[t * k + c]
    return t


# ---------------------------------------------------------------------------
# Vectorized (block-composed) kernels
# ---------------------------------------------------------------------------

#: Symbols composed per block by the vector shape.  Larger blocks mean fewer
#: per-block mapping rows held live; smaller blocks shorten the scalar tail.
VECTOR_BLOCK = 256


def transform_scan_vector(
    table: np.ndarray, classes: np.ndarray, block: int = VECTOR_BLOCK
) -> np.ndarray:
    """Algorithm 3 chunk scan with block-composed mappings.

    The chunk is cut into ``g = n // block`` blocks; all block mappings are
    built simultaneously with ``block`` chained gathers (each advancing
    every block by one symbol), then ``⊙``-reduced as a balanced tree with
    the ``right[left]`` composition — ``block + ⌈log₂ g⌉`` NumPy calls per
    chunk instead of one Python-loop gather per character.  The ``< block``
    leftover is composed symbol-by-symbol.
    """
    n = table.shape[0]
    cols = table_columns(table)
    m = len(classes)
    g = m // block
    t = None
    rest_start = 0
    if g >= 1:
        body = classes[: g * block].reshape(g, block)
        cur = cols[body[:, 0]]
        for j in range(1, block):
            # cur[b][q] <- δ(cur[b][q], c_{b,j}) for every block b at once
            cur = np.take_along_axis(cols[body[:, j]], cur, axis=1)
        while cur.shape[0] > 1:
            even = (cur.shape[0] // 2) * 2
            merged = np.take_along_axis(cur[1:even:2], cur[0:even:2], axis=1)
            if cur.shape[0] & 1:
                merged = np.concatenate([merged, cur[-1:]])
            cur = merged
        t = cur[0]
        rest_start = g * block
    for c in classes[rest_start:].tolist():
        t = cols[c] if t is None else cols[c][t]
    if t is None:  # empty chunk: the identity transformation
        return np.arange(n, dtype=np.int32)
    return t.astype(np.int32, copy=False)


def sfa_scan_vector(
    table: np.ndarray, initial: int, classes: np.ndarray, block: int = VECTOR_BLOCK
) -> int:
    """Vector-shape Algorithm 5 chunk scan: full block transform, then pick.

    Computes the chunk's transformation vector and applies it to
    ``initial`` — ``O(|Q|)`` work per symbol, all inside NumPy.  Pays off
    for small state counts; for large ``|Q|`` the stride kernels are the
    single-state accelerator of choice.
    """
    if len(classes) == 0:
        return int(initial)
    return int(transform_scan_vector(table, classes, block)[initial])


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def scan_block(
    automaton,
    state: int,
    classes: np.ndarray,
    kernel: str,
    stride_budget: "int | None" = None,
) -> int:
    """Advance one automaton state through a block with the chosen kernel.

    Works for any table automaton (DFA or SFA — anything with ``table``
    and ``stride_table``).  The stride kernels walk the largest affordable
    precomposed table (under ``stride_budget``, degrading stride4 →
    stride2 → the 1-gram loop) and finish the ``< stride`` leftover on
    the base table; the running state stays a plain state index
    throughout.  This is the shared serial scan of the stream cursors and
    ``MultiPatternSet``'s one-chunk path.
    """
    from repro.automata.stride import best_stride_table

    if kernel in ("stride2", "stride4"):
        st = best_stride_table(
            automaton, 2 if kernel == "stride2" else 4, stride_budget
        )
        if st is not None:
            packed, tail = st.pack(classes)
            state = sfa_scan(st.table, state, packed)
            return sfa_scan(automaton.table, state, tail)
        kernel = "python"
    if kernel == "vector":
        return sfa_scan_vector(automaton.table, state, classes)
    return sfa_scan(automaton.table, state, classes)


def run_scan(
    kind: str,
    table: np.ndarray,
    initial: int,
    classes: np.ndarray,
    kernel: str = "python",
    accept: "np.ndarray | None" = None,
) -> Union[int, np.ndarray]:
    """Dispatch a named kernel (``initial`` is ignored by ``"transform"``).

    ``kernel`` selects the scan shape.  The stride kernels reach this point
    as ``"python"``/``"vector"`` over a precomposed table (the table swap
    and symbol packing happen in the engine), so ``"stride2"``/``"stride4"``
    here simply run the reference loop on whatever table they are given.
    The ``"mask"`` kind additionally needs the automaton's ``accept``
    vector and always runs the scalar loop (every position's bit is
    demanded, so no kernel can skip positions).
    """
    if kernel not in KERNELS:
        raise MatchEngineError(
            f"unknown kernel {kernel!r} (choose from {', '.join(KERNELS)})"
        )
    if kind == "sfa":
        if kernel == "vector":
            return sfa_scan_vector(table, initial, classes)
        return sfa_scan(table, initial, classes)
    if kind == "transform":
        if kernel == "vector":
            return transform_scan_vector(table, classes)
        return transform_scan(table, classes)
    if kind == "mask":
        if accept is None:
            raise MatchEngineError("mask scans need the accept vector")
        return mask_scan(table, accept, initial, classes)
    raise MatchEngineError(f"unknown scan kind {kind!r}")
