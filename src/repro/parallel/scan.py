"""Table-scan kernels shared by every executor backend.

These are the per-chunk inner loops of Algorithms 3 and 5 factored into a
plain module so that worker *processes* can run them: a process pool cannot
pickle the closures that :mod:`repro.matching` builds around an automaton,
but it can ship ``(kernel name, shared-memory reference, span)`` triples and
let the worker import the kernel by name and run it against a zero-copy
view of the table (DESIGN.md §3.4).

Two kernels cover every chunked engine:

* ``"sfa"`` — Algorithm 5 chunk scan: walk *one* state through the chunk,
  one table lookup per character; returns the reached state index.
* ``"transform"`` — Algorithm 3 chunk scan: simulate *all* states at once
  (one vectorized gather per character); returns the transformation vector.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import MatchEngineError


def sfa_scan(table: np.ndarray, initial: int, classes: np.ndarray) -> int:
    """Walk one automaton state through ``classes`` (Algorithm 5 lines 1-5)."""
    k = table.shape[1]
    flat = table.ravel().tolist()
    f = int(initial)
    for c in classes.tolist():
        f = flat[f * k + c]
    return f


def transform_scan(table: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Simulate transitions from all states over ``classes`` (Algorithm 3).

    Returns the transformation vector ``T`` with ``T[q]`` = state reached
    from ``q`` after the chunk; one vectorized gather per character.
    """
    n, k = table.shape
    flat = table.ravel()
    t = np.arange(n, dtype=np.int32)
    for c in classes.tolist():
        # T[q] <- δ(T[q], c) for all q at once
        t = flat[t * k + c]
    return t


SCAN_KINDS = ("sfa", "transform")


def run_scan(
    kind: str, table: np.ndarray, initial: int, classes: np.ndarray
) -> Union[int, np.ndarray]:
    """Dispatch a named kernel (``initial`` is ignored by ``"transform"``)."""
    if kind == "sfa":
        return sfa_scan(table, initial, classes)
    if kind == "transform":
        return transform_scan(table, classes)
    raise MatchEngineError(f"unknown scan kind {kind!r}")
