"""Exception hierarchy for the SFA reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class RegexSyntaxError(ReproError):
    """Raised when a regular expression cannot be parsed.

    Attributes
    ----------
    pattern:
        The offending pattern (``str``).
    position:
        Byte offset into the pattern where the error was detected.
    """

    def __init__(self, message: str, pattern: str = "", position: int = -1):
        self.pattern = pattern
        self.position = position
        if position >= 0:
            message = f"{message} (at position {position} in {pattern!r})"
        super().__init__(message)


class UnsupportedFeatureError(RegexSyntaxError):
    """Raised for regex features outside the regular-language fragment.

    The paper's SNORT study explicitly excluded expressions using back
    references and similar extensions; we raise instead of silently
    mis-compiling them.
    """


class AutomatonError(ReproError):
    """Raised for structurally invalid automata or invalid operations."""


class StateExplosionError(AutomatonError):
    """Raised when a construction exceeds a caller-supplied state budget.

    Subset construction is worst-case ``2^n`` and correspondence construction
    is worst-case ``n^n`` (Theorem 2); callers bound the blow-up with
    ``max_states`` and receive this error instead of an OOM.
    """

    def __init__(self, message: str, limit: int, reached: int):
        self.limit = limit
        self.reached = reached
        super().__init__(f"{message}: limit={limit}, reached>={reached}")


class MatchEngineError(ReproError):
    """Raised on invalid matcher configuration (e.g. zero chunks)."""


class SimulationError(ReproError):
    """Raised by the parallel-machine / cache simulators on bad configs."""


class ServiceError(ReproError):
    """Raised by the match service (protocol violations, remote errors).

    Attributes
    ----------
    kind:
        Short machine-readable error class, mirrored in the wire format's
        structured error replies (e.g. ``"protocol"``, ``"payload-too-large"``,
        ``"compile"``, ``"bad-request"``).
    """

    def __init__(self, message: str, kind: str = "service"):
        self.kind = kind
        super().__init__(message)
