"""Wall-clock timing and human-readable formatting helpers."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def format_seconds(s: float) -> str:
    """Render a duration with a sensible unit (ns/us/ms/s)."""
    if s < 1e-6:
        return f"{s * 1e9:.1f} ns"
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.2f} ms"
    return f"{s:.3f} s"


def format_bytes(n: float) -> str:
    """Render a byte count with a binary unit suffix."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} PB"
