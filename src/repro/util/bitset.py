"""Integer bitset helpers.

Subset construction manipulates sets of NFA states heavily; representing a
set of states as a Python ``int`` bitmask makes union an ``|``, membership a
shift+mask, and hashing free.  These helpers keep that code readable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


def bit(i: int) -> int:
    """Return the bitset containing only element ``i``."""
    return 1 << i


def from_iterable(items: Iterable[int]) -> int:
    """Build a bitset from an iterable of non-negative ints."""
    mask = 0
    for i in items:
        mask |= 1 << i
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set elements of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> List[int]:
    """Return the set elements of ``mask`` as a sorted list."""
    return list(iter_bits(mask))


def popcount(mask: int) -> int:
    """Number of elements in the bitset."""
    return mask.bit_count()


def intersects(a: int, b: int) -> bool:
    """True iff the two bitsets share an element."""
    return (a & b) != 0


def union_all(masks: Iterable[int]) -> int:
    """Union of an iterable of bitsets."""
    out = 0
    for m in masks:
        out |= m
    return out
