"""Small shared utilities: bitsets, stable hashing, timers, chunk math."""

from repro.util.bitset import (
    bit,
    bits_of,
    from_iterable,
    intersects,
    iter_bits,
    popcount,
    union_all,
)
from repro.util.timing import Timer, format_bytes, format_seconds

__all__ = [
    "bit",
    "bits_of",
    "from_iterable",
    "intersects",
    "iter_bits",
    "popcount",
    "union_all",
    "Timer",
    "format_bytes",
    "format_seconds",
]
